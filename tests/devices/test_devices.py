"""Unit tests for device primitives and technology constants."""

import pytest

from repro.devices import (
    CMOS_32NM,
    CNTFET_32NM,
    ChannelType,
    Device,
    DeviceRole,
    Literal,
    PolarityControl,
    pass_transistor_device,
    transmission_gate_devices,
)


class TestTechnology:
    def test_cntfet_symmetric_devices(self):
        assert CNTFET_32NM.pn_resistance_ratio == 1.0
        assert CNTFET_32NM.inverter_pmos_width == 1.0
        assert CNTFET_32NM.inverter_input_capacitance == 2.0
        assert CNTFET_32NM.inverter_area == 2.0
        assert CNTFET_32NM.ambipolar

    def test_cmos_mobility_ratio(self):
        assert CMOS_32NM.pn_resistance_ratio == 2.0
        assert CMOS_32NM.inverter_pmos_width == 2.0
        assert CMOS_32NM.inverter_input_capacitance == 3.0
        assert not CMOS_32NM.ambipolar

    def test_intrinsic_delays_match_paper(self):
        assert CNTFET_32NM.tau_ps == pytest.approx(0.59)
        assert CMOS_32NM.tau_ps == pytest.approx(3.00)

    def test_width_for_resistance(self):
        assert CNTFET_32NM.n_width_for_resistance(0.5) == 2.0
        assert CMOS_32NM.p_width_for_resistance(0.5) == 4.0
        with pytest.raises(ValueError):
            CNTFET_32NM.n_width_for_resistance(0.0)


class TestLiteral:
    def test_complement_round_trip(self):
        a = Literal("A")
        assert a.complement().complement() == a
        assert str(a.complement()) == "A'"

    def test_evaluate(self):
        assert Literal("A").evaluate({"A": True})
        assert Literal("A", negated=True).evaluate({"A": False})
        with pytest.raises(KeyError):
            Literal("A").evaluate({})


class TestPolarityControl:
    def test_fixed(self):
        control = PolarityControl.fixed(ChannelType.N)
        assert control.is_fixed
        assert control.channel_type({}) is ChannelType.N

    def test_signal_controlled(self):
        control = PolarityControl.signal(Literal("B"))
        assert not control.is_fixed
        assert control.channel_type({"B": False}) is ChannelType.N
        assert control.channel_type({"B": True}) is ChannelType.P

    def test_exactly_one_argument(self):
        with pytest.raises(ValueError):
            PolarityControl(ChannelType.N, Literal("B"))
        with pytest.raises(ValueError):
            PolarityControl(None, None)


class TestDevice:
    def _n_device(self):
        return Device(
            role=DeviceRole.PULL_DOWN,
            gate=Literal("A"),
            polarity=PolarityControl.fixed(ChannelType.N),
            width=1.0,
            node_a="Y",
            node_b="VSS",
        )

    def test_n_device_conduction(self):
        device = self._n_device()
        assert device.conducts({"A": True})
        assert not device.conducts({"A": False})

    def test_p_device_conduction(self):
        device = Device(
            role=DeviceRole.PULL_UP,
            gate=Literal("A"),
            polarity=PolarityControl.fixed(ChannelType.P),
            width=1.0,
            node_a="VDD",
            node_b="Y",
        )
        assert device.conducts({"A": False})
        assert not device.conducts({"A": True})

    def test_always_on_load(self):
        load = Device(
            role=DeviceRole.PSEUDO_LOAD,
            gate=None,
            polarity=PolarityControl.fixed(ChannelType.P),
            width=1 / 3,
            node_a="VDD",
            node_b="Y",
        )
        assert load.conducts({})
        assert load.conducts({"A": True})

    def test_strength(self):
        device = self._n_device()
        assert device.passes_strongly(False, {"A": True})
        assert not device.passes_strongly(True, {"A": True})

    def test_width_must_be_positive(self):
        with pytest.raises(ValueError):
            Device(
                role=DeviceRole.PULL_DOWN,
                gate=Literal("A"),
                polarity=PolarityControl.fixed(ChannelType.N),
                width=0.0,
                node_a="Y",
                node_b="VSS",
            )

    def test_signal_loads_include_polarity_gate(self):
        device = Device(
            role=DeviceRole.PULL_DOWN,
            gate=Literal("A"),
            polarity=PolarityControl.signal(Literal("B")),
            width=0.5,
            node_a="Y",
            node_b="VSS",
        )
        loads = device.signal_loads()
        assert loads[Literal("A")] == pytest.approx(0.5)
        assert loads[Literal("B")] == pytest.approx(0.5)


class TestAmbipolarSwitches:
    def test_single_pass_transistor_implements_xor(self):
        device = pass_transistor_device(
            Literal("A"), Literal("B"), 2.0, "Y", "VSS", DeviceRole.PULL_DOWN
        )
        for a in (False, True):
            for b in (False, True):
                assert device.conducts({"A": a, "B": b}) == (a != b)

    def test_transmission_gate_both_devices_conduct_on_xor(self):
        first, second = transmission_gate_devices(
            Literal("A"), Literal("B"), 2 / 3, "Y", "VSS", DeviceRole.PULL_DOWN
        )
        for a in (False, True):
            for b in (False, True):
                env = {"A": a, "B": b}
                assert first.conducts(env) == (a != b)
                assert second.conducts(env) == (a != b)

    def test_transmission_gate_always_has_a_strong_path(self):
        # Whenever the gate conducts, one of the two devices passes each rail
        # value at full swing (Fig. 3 of the paper).
        first, second = transmission_gate_devices(
            Literal("A"), Literal("B"), 2 / 3, "Y", "VSS", DeviceRole.PULL_DOWN
        )
        for a in (False, True):
            for b in (False, True):
                env = {"A": a, "B": b}
                if not first.conducts(env):
                    continue
                for rail_value in (False, True):
                    assert first.passes_strongly(rail_value, env) or second.passes_strongly(
                        rail_value, env
                    )
