"""Histogram percentile math and the --metrics-out report builder."""

import math
import random

import pytest

from repro.obs.metrics import Histogram, build_metrics, top_spans
from repro.obs.tracer import SpanRecord

#: Quarter-octave buckets bound the relative quantile error at 2^(1/4)-1.
RELATIVE_ERROR = 2 ** 0.25 - 1


def _span(span_id, name, category, start_us, duration_us, pid=1, parent=None, **attrs):
    return SpanRecord(
        span_id=span_id,
        parent_id=parent,
        name=name,
        category=category,
        start_us=start_us,
        duration_us=duration_us,
        pid=pid,
        tid=1,
        attributes=attrs,
    )


class TestHistogram:
    def test_bucket_bounds_contain_their_values(self):
        for value in (0.001, 0.9, 1.0, 7.3, 1024.0, 1e9):
            low, high = Histogram.bucket_bounds(Histogram.bucket_of(value))
            assert low <= value < high

    def test_empty_histogram(self):
        histogram = Histogram()
        assert histogram.percentile(50) == 0.0
        assert histogram.mean == 0.0
        assert histogram.as_dict()["count"] == 0

    def test_rejects_negative_values(self):
        with pytest.raises(ValueError):
            Histogram().add(-1.0)
        with pytest.raises(ValueError):
            Histogram().percentile(101)

    def test_zeros_are_exact(self):
        histogram = Histogram()
        for _ in range(90):
            histogram.add(0.0)
        for _ in range(10):
            histogram.add(100.0)
        assert histogram.percentile(50) == 0.0
        assert histogram.percentile(90) == 0.0
        assert histogram.percentile(99) > 0.0
        assert histogram.zeros == 90

    def test_single_value_percentiles_stay_in_its_bucket(self):
        histogram = Histogram()
        histogram.add(42.0)
        for q in (0, 50, 99, 100):
            low, high = Histogram.bucket_bounds(Histogram.bucket_of(42.0))
            assert low <= histogram.percentile(q) <= high

    def test_percentiles_match_exact_ranks_within_bucket_error(self):
        rng = random.Random(7)
        values = [rng.lognormvariate(3.0, 1.5) for _ in range(5000)]
        histogram = Histogram()
        histogram.extend(values)
        ordered = sorted(values)
        for q in (50, 90, 99):
            exact = ordered[max(1, math.ceil(q / 100 * len(ordered))) - 1]
            approx = histogram.percentile(q)
            assert approx == pytest.approx(exact, rel=RELATIVE_ERROR)

    def test_percentiles_are_monotone_in_q(self):
        histogram = Histogram()
        histogram.extend(float(v) for v in range(1, 200))
        quantiles = [histogram.percentile(q) for q in range(0, 101, 5)]
        assert quantiles == sorted(quantiles)

    def test_mean_max_and_count_are_exact(self):
        histogram = Histogram()
        histogram.extend([1.0, 2.0, 3.0, 10.0])
        assert histogram.total == 4
        assert histogram.mean == 4.0
        assert histogram.max == 10.0

    def test_as_dict_is_json_ready(self):
        histogram = Histogram()
        histogram.extend([0.0, 1.0, 1.5, 300.0])
        payload = histogram.as_dict()
        assert payload["count"] == 4
        assert payload["zeros"] == 1
        assert payload["buckets_per_octave"] == 4
        assert all(isinstance(k, str) for k in payload["buckets"])
        assert sum(payload["buckets"].values()) == 3


class TestTopSpans:
    def test_ranks_by_self_time_not_total_time(self):
        # parent: 100ms total but only 10ms of its own work.
        spans = [
            _span(1, "parent", "engine", 0, 100_000),
            _span(2, "child", "job", 1_000, 90_000, parent=1),
        ]
        ranked = top_spans(spans)
        assert [row["name"] for row in ranked] == ["child", "parent"]
        assert ranked[0]["self_ms"] == pytest.approx(90.0)
        assert ranked[1]["self_ms"] == pytest.approx(10.0)

    def test_children_in_other_processes_do_not_deduct(self):
        # span ids collide across pids; self time must namespace by pid.
        spans = [
            _span(1, "parent", "engine", 0, 50_000, pid=10),
            _span(1, "worker-root", "job", 0, 40_000, pid=20),
            _span(2, "worker-child", "stage", 0, 30_000, pid=20, parent=1),
        ]
        by_name = {row["name"]: row for row in top_spans(spans)}
        assert by_name["parent"]["self_ms"] == pytest.approx(50.0)
        assert by_name["worker-root"]["self_ms"] == pytest.approx(10.0)

    def test_limit_and_negative_self_clamp(self):
        spans = [
            _span(1, "parent", "engine", 0, 10),
            _span(2, "long-child", "job", 0, 50, parent=1),  # clock skew
        ]
        ranked = top_spans(spans, limit=1)
        assert len(ranked) == 1
        assert ranked[0]["name"] == "long-child"


class TestBuildMetrics:
    def _trace(self):
        return [
            _span(1, "run", "run", 0, 500_000, pid=1),
            _span(2, "job:a", "job", 1_000, 200_000, pid=2, candidate_rows=10),
            _span(3, "job:b", "job", 1_000, 100_000, pid=3, candidate_rows=5),
            _span(4, "cache-hit:c", "cache", 2_000, 0, pid=1, parent=1),
            _span(5, "rewrite", "pass", 3_000, 40_000, pid=2),
            _span(6, "match", "stage", 4_000, 30_000, pid=2),
            _span(7, "match", "stage", 4_000, 20_000, pid=3),
        ]

    def test_report_shape_and_aggregates(self):
        counters = {
            "jobs.retry": 2,
            "jobs.crash": 1,
            "jobs.backoff_seconds": 0.75,
        }
        report = build_metrics(self._trace(), counters, run_id="rid")
        assert report["schema"] == 1
        assert report["run_id"] == "rid"
        assert report["spans"]["total"] == 7
        assert report["spans"]["pids"] == [1, 2, 3]
        assert report["spans"]["by_category"]["job"] == 2
        assert report["jobs"]["executed"] == 2
        assert report["jobs"]["cached"] == 1
        assert report["jobs"]["retries"] == 2
        assert report["jobs"]["crashes"] == 1
        assert report["jobs"]["backoff_seconds"] == 0.75
        assert report["histograms"]["job_latency_ms"]["count"] == 2
        assert report["histograms"]["pass_latency_ms"]["count"] == 1
        assert report["stage_totals_ms"] == {"match": pytest.approx(50.0)}
        assert report["mapper"]["candidate_rows"] == 15
        assert len(report["top_spans_by_self_time"]) == 5
        assert "robustness" not in report

    def test_cache_figures_prefer_robustness_stats(self):
        robustness = {"cache": {"hits": 3, "misses": 1}}
        report = build_metrics(self._trace(), {}, robustness=robustness)
        assert report["cache"] == {"hits": 3, "misses": 1, "hit_rate": 0.75}
        assert report["robustness"] == robustness

    def test_empty_trace_produces_a_valid_report(self):
        report = build_metrics([], {}, run_id=None)
        assert report["spans"]["total"] == 0
        assert report["cache"]["hit_rate"] == 0.0
        assert report["top_spans_by_self_time"] == []
