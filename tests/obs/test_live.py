"""Live progress line: policy, rendering and terminal hygiene."""

import io

from repro.obs.live import LiveProgress, live_progress_enabled


class _Tty(io.StringIO):
    def isatty(self):
        return True


class TestPolicy:
    def test_interactive_stderr_enables(self):
        assert live_progress_enabled(stream=_Tty(), environ={})

    def test_non_tty_disables(self):
        assert not live_progress_enabled(stream=io.StringIO(), environ={})

    def test_env_overrides_beat_the_tty_check(self):
        assert live_progress_enabled(
            stream=io.StringIO(), environ={"REPRO_LIVE": "1"}
        )
        assert not live_progress_enabled(
            stream=_Tty(), environ={"REPRO_LIVE": "0"}
        )
        assert not live_progress_enabled(
            stream=_Tty(), environ={"REPRO_LIVE": ""}
        )


class TestRendering:
    def _progress(self):
        stream = io.StringIO()
        # min_interval=0 so every feed renders (tests must be deterministic).
        return LiveProgress(stream=stream, min_interval=0.0), stream

    def test_counts_and_hit_rate(self):
        progress, stream = self._progress()
        progress.start_batch(4)
        progress.job_cached()
        progress.job_done()
        last = stream.getvalue().split("\r")[-1]
        assert "jobs 2/4" in last
        assert "cached 1 (50%)" in last

    def test_batches_accumulate(self):
        progress, stream = self._progress()
        progress.start_batch(2)
        progress.start_batch(3)
        assert "jobs 0/5" in stream.getvalue().split("\r")[-1]

    def test_failures_split_retried_and_degraded(self):
        progress, stream = self._progress()
        progress.start_batch(2)
        progress.job_failed("crash", "retry")
        progress.job_failed("timeout", "in-process")
        last = stream.getvalue().split("\r")[-1]
        assert "retried 1" in last
        assert "degraded 1" in last
        assert "faults 2" in last

    def test_quiet_run_omits_failure_fields(self):
        progress, stream = self._progress()
        progress.start_batch(1)
        progress.job_done()
        last = stream.getvalue().split("\r")[-1]
        assert "retried" not in last
        assert "faults" not in last

    def test_renders_rewrite_in_place(self):
        progress, stream = self._progress()
        progress.start_batch(1)
        progress.job_done()
        payload = stream.getvalue()
        assert payload.count("\r\x1b[K") == 2
        assert "\n" not in payload

    def test_finish_releases_the_line(self):
        progress, stream = self._progress()
        progress.start_batch(1)
        progress.job_done()
        progress.finish()
        assert stream.getvalue().endswith("\n")

    def test_clear_erases_without_newline(self):
        progress, stream = self._progress()
        progress.start_batch(1)
        progress.clear()
        assert stream.getvalue().endswith("\r\x1b[K")

    def test_throttle_suppresses_intermediate_renders(self):
        stream = io.StringIO()
        progress = LiveProgress(stream=stream, min_interval=3600.0)
        progress.start_batch(3)  # first render goes through
        progress.job_done()
        progress.job_done()
        assert stream.getvalue().count("jobs") == 1
        progress.finish()  # forced final render
        assert "jobs 2/3" in stream.getvalue().split("\r")[-1]

    def test_closed_stream_is_tolerated(self):
        stream = io.StringIO()
        progress = LiveProgress(stream=stream, min_interval=0.0)
        stream.close()
        progress.start_batch(1)
        progress.job_done()
        progress.finish()  # must not raise
