"""Chrome trace-event schema validation and the JSONL event log."""

import json

from repro.obs.chrome import chrome_payload, trace_events, write_chrome_trace
from repro.obs.events import event_lines, write_events
from repro.obs.tracer import SpanRecord

#: Phases the exporter may legally emit.
VALID_PHASES = {"M", "X", "i"}


def _span(span_id, name, start_us, duration_us, pid, parent=None, events=(), **attrs):
    return SpanRecord(
        span_id=span_id,
        parent_id=parent,
        name=name,
        category="job",
        start_us=start_us,
        duration_us=duration_us,
        pid=pid,
        tid=pid * 10,
        attributes=attrs,
        events=list(events),
    )


def _sample_spans():
    return [
        _span(1, "run", 1_000_000, 900, pid=100),
        _span(1, "job:a", 1_000_100, 500, pid=200, nodes=12),
        _span(
            2,
            "job:b",
            1_000_200,
            300,
            pid=200,
            parent=1,
            events=[(1_000_250, "job.crash", {"attempt": 1})],
        ),
    ]


class TestChromeSchema:
    def test_every_event_satisfies_the_trace_event_schema(self):
        events = trace_events(_sample_spans(), parent_pid=100)
        assert events, "exporter must emit events"
        for event in events:
            assert event["ph"] in VALID_PHASES
            assert isinstance(event["name"], str) and event["name"]
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)
            assert isinstance(event["args"], dict)
            if event["ph"] != "M":
                assert isinstance(event["ts"], int) and event["ts"] >= 0
            if event["ph"] == "X":
                assert isinstance(event["dur"], int) and event["dur"] >= 0
            if event["ph"] == "i":
                assert event["s"] == "t"

    def test_timestamps_are_rebased_to_the_earliest_span(self):
        events = trace_events(_sample_spans(), parent_pid=100)
        complete = [e for e in events if e["ph"] == "X"]
        assert min(e["ts"] for e in complete) == 0
        by_name = {e["name"]: e for e in complete}
        assert by_name["job:a"]["ts"] == 100
        assert by_name["job:b"]["ts"] == 200

    def test_process_metadata_names_every_pid_track(self):
        events = trace_events(_sample_spans(), parent_pid=100)
        tracks = {
            e["pid"]: e["args"]["name"] for e in events if e["ph"] == "M"
        }
        assert tracks == {100: "parent", 200: "worker-200"}

    def test_span_events_become_thread_scoped_instants(self):
        events = trace_events(_sample_spans(), parent_pid=100)
        instants = [e for e in events if e["ph"] == "i"]
        assert len(instants) == 1
        assert instants[0]["name"] == "job.crash"
        assert instants[0]["args"] == {"attempt": 1}
        assert instants[0]["pid"] == 200

    def test_payload_carries_run_metadata(self):
        payload = chrome_payload(_sample_spans(), run_id="rid", parent_pid=100)
        assert payload["displayTimeUnit"] == "ms"
        assert payload["otherData"]["run_id"] == "rid"
        assert payload["otherData"]["producer"] == "repro.obs"

    def test_written_file_parses_as_json(self, tmp_path):
        path = write_chrome_trace(
            tmp_path / "trace.json", _sample_spans(), run_id="rid", parent_pid=100
        )
        payload = json.loads(path.read_text())
        assert isinstance(payload["traceEvents"], list)
        assert payload == json.loads(
            json.dumps(payload)
        )  # round-trip stable

    def test_empty_span_list_is_a_valid_trace(self, tmp_path):
        path = write_chrome_trace(tmp_path / "empty.json", [], run_id=None)
        assert json.loads(path.read_text())["traceEvents"] == []


class TestEventLog:
    def test_envelope_and_ordering(self):
        lines = event_lines(_sample_spans(), "rid", counters={"ticks": 2})
        assert lines[0]["type"] == "run-start"
        assert lines[-1]["type"] == "run-end"
        assert lines[0]["ts_us"] == 1_000_000
        assert lines[-1]["ts_us"] == 1_000_900
        assert lines[-1]["spans"] == 3
        assert lines[-1]["counters"] == {"ticks": 2}
        span_lines = [line for line in lines if line["type"] == "span"]
        assert [line["ts_us"] for line in span_lines] == sorted(
            line["ts_us"] for line in span_lines
        )

    def test_every_line_carries_the_run_id(self):
        lines = event_lines(_sample_spans(), "rid")
        assert all(line["run_id"] == "rid" for line in lines)

    def test_point_events_project_to_their_own_lines(self):
        lines = event_lines(_sample_spans(), "rid")
        events = [line for line in lines if line["type"] == "event"]
        assert len(events) == 1
        assert events[0]["name"] == "job.crash"
        assert events[0]["span_id"] == 2
        assert events[0]["attributes"] == {"attempt": 1}

    def test_order_is_deterministic_across_buffer_permutations(self):
        spans = _sample_spans()
        assert event_lines(spans, "rid") == event_lines(
            list(reversed(spans)), "rid"
        )

    def test_written_file_is_one_json_object_per_line(self, tmp_path):
        path = write_events(
            tmp_path / "events.jsonl", _sample_spans(), "rid", counters={}
        )
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert lines[0]["type"] == "run-start"
        assert lines[-1]["type"] == "run-end"
        assert len(lines) == 2 + 3 + 1  # envelope + spans + one event

    def test_empty_trace_still_produces_the_envelope(self):
        lines = event_lines([], "rid")
        assert [line["type"] for line in lines] == ["run-start", "run-end"]
