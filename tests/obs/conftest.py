"""Shared fixtures: every obs test starts and ends with a clean tracer."""

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def _clean_tracer():
    obs.reset()
    yield
    obs.reset()
