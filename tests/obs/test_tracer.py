"""Tracer invariants: nesting, modes, snapshots and the worker protocol."""

import os
import threading

import pytest

from repro import obs, profiling
from repro.obs.tracer import SpanRecord


def _by_name(spans):
    return {record.name: record for record in spans}


class TestSpanNesting:
    def test_parenting_follows_call_structure(self):
        obs.enable_tracing()
        with obs.span("outer"):
            with obs.span("middle"):
                with obs.span("inner"):
                    pass
            with obs.span("sibling"):
                pass
        spans = _by_name(obs.spans())
        assert spans["inner"].parent_id == spans["middle"].span_id
        assert spans["middle"].parent_id == spans["outer"].span_id
        assert spans["sibling"].parent_id == spans["outer"].span_id
        assert spans["outer"].parent_id is None

    def test_spans_complete_in_close_order(self):
        obs.enable_tracing()
        with obs.span("a"):
            with obs.span("b"):
                pass
        assert [record.name for record in obs.spans()] == ["b", "a"]

    def test_children_start_within_parent_interval(self):
        obs.enable_tracing()
        with obs.span("parent"):
            with obs.span("child"):
                pass
        spans = _by_name(obs.spans())
        parent, child = spans["parent"], spans["child"]
        assert parent.start_us <= child.start_us
        assert child.duration_us <= parent.duration_us

    def test_span_ids_are_unique_within_the_process(self):
        obs.enable_tracing()
        for index in range(10):
            with obs.span(f"s{index}"):
                pass
        ids = [record.span_id for record in obs.spans()]
        assert len(ids) == len(set(ids))

    def test_threads_keep_independent_stacks(self):
        obs.enable_tracing()

        def worker():
            with obs.span("thread-root"):
                with obs.span("thread-child"):
                    pass

        with obs.span("main-root"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        spans = _by_name(obs.spans())
        # The other thread's root must not adopt this thread's open span.
        assert spans["thread-root"].parent_id is None
        assert spans["thread-child"].parent_id == spans["thread-root"].span_id
        assert spans["thread-root"].tid != spans["main-root"].tid

    def test_pid_and_tid_are_recorded(self):
        obs.enable_tracing()
        with obs.span("tagged"):
            pass
        record = obs.spans()[0]
        assert record.pid == os.getpid()
        assert record.tid == threading.get_ident() & 0x7FFFFFFF

    def test_attributes_events_and_annotate(self):
        obs.enable_tracing()
        with obs.span("work", category="job", static=1) as handle:
            handle.set("discovered", 2)
            handle.add_event("marker", detail="x")
            obs.annotate(late=3)
        record = obs.spans()[0]
        assert record.category == "job"
        assert record.attributes == {"static": 1, "discovered": 2, "late": 3}
        assert [name for _, name, _ in record.events] == ["marker"]

    def test_event_without_open_span_becomes_zero_duration_span(self):
        obs.enable_tracing()
        obs.event("orphan", kind="crash")
        record = obs.spans()[0]
        assert record.name == "orphan"
        assert record.category == "event"
        assert record.duration_us == 0
        assert record.attributes == {"kind": "crash"}

    def test_add_span_records_synthetic_span_under_open_parent(self):
        obs.enable_tracing()
        with obs.span("batch"):
            obs.add_span("cache-hit:x", "cache", key="abc")
        spans = _by_name(obs.spans())
        assert spans["cache-hit:x"].parent_id == spans["batch"].span_id
        assert spans["cache-hit:x"].attributes == {"key": "abc"}
        # Synthetic spans never linger on the stack: the next child of
        # "batch" must not adopt the cache hit as its parent.


class TestModes:
    def test_disabled_paths_record_nothing(self):
        with obs.span("ignored"):
            obs.annotate(x=1)
            obs.event("ignored-too")
        obs.count("ignored-counter")
        obs.add_span("ignored-synth", "cache")
        with obs.stage("ignored-stage"):
            pass
        assert obs.spans() == []
        assert obs.counters() == {}
        assert obs.profile_snapshot()["stages"] == {}

    def test_profile_mode_accumulates_stages_without_spans(self):
        obs.enable_profile()
        with obs.stage("match"):
            pass
        with obs.stage("match"):
            pass
        assert obs.spans() == []
        snapshot = obs.profile_snapshot()
        assert snapshot["entries"] == {"match": 2}
        assert snapshot["stages"]["match"] >= 0.0
        assert snapshot["total_seconds"] == sum(snapshot["stages"].values())

    def test_trace_mode_records_stage_spans_and_accumulators(self):
        obs.enable_tracing()
        with obs.stage("cover"):
            pass
        assert [record.name for record in obs.spans()] == ["cover"]
        assert obs.spans()[0].category == "stage"
        assert obs.profile_snapshot()["entries"] == {"cover": 1}

    def test_profile_shim_delegates_to_the_tracer(self):
        profiling.enable()
        try:
            with profiling.stage("verify"):
                profiling.count("checks", 3)
            snapshot = profiling.snapshot()
        finally:
            profiling.disable()
        assert snapshot["entries"] == {"verify": 1}
        assert snapshot["counters"] == {"checks": 3}
        assert profiling.active() is False

    def test_trace_only_mode_does_not_claim_profile_active(self):
        # The engine keys its verify stage off profiling.active(); tracing
        # must never flip it or traced artifacts would diverge.
        obs.enable_tracing()
        assert profiling.active() is False
        assert obs.tracing_active() is True

    def test_enable_profile_preserves_a_live_trace(self):
        obs.enable_tracing()
        with obs.span("early"):
            pass
        obs.enable_profile()
        assert [record.name for record in obs.spans()] == ["early"]

    def test_enable_profile_alone_resets_previous_figures(self):
        obs.enable_profile()
        with obs.stage("old"):
            pass
        obs.enable_profile()
        assert obs.profile_snapshot()["entries"] == {}

    def test_run_id_default_and_env_override(self, monkeypatch):
        monkeypatch.delenv("REPRO_RUN_ID", raising=False)
        generated = obs.enable_tracing()
        assert generated and obs.run_id() == generated
        obs.reset()
        monkeypatch.setenv("REPRO_RUN_ID", "pinned-run")
        assert obs.enable_tracing() == "pinned-run"

    def test_counters_accumulate_floats_and_ints(self):
        obs.enable_tracing()
        obs.count("jobs.retry")
        obs.count("jobs.retry")
        obs.count("jobs.backoff_seconds", 0.25)
        assert obs.counters() == {"jobs.retry": 2, "jobs.backoff_seconds": 0.25}
        snapshot = obs.profile_snapshot()
        assert snapshot["counters"]["jobs.retry"] == 2
        assert isinstance(snapshot["counters"]["jobs.retry"], int)


class TestWorkerProtocol:
    def test_worker_config_round_trip(self):
        obs.enable_tracing("run-77")
        config = obs.worker_config()
        obs.reset()
        obs.activate_worker(config)
        assert obs.remote_active()
        assert obs.tracing_active()
        assert obs.run_id() == "run-77"

    def test_activate_worker_clears_inherited_buffers(self):
        obs.enable_tracing()
        with obs.span("parent-span"):
            pass
        obs.activate_worker(obs.worker_config())
        assert obs.spans() == []  # the parent reports its own spans

    def test_activate_worker_with_none_disables_everything(self):
        obs.enable_tracing()
        obs.activate_worker(None)
        assert not obs.remote_active()
        assert not obs.tracing_active()
        with obs.span("ignored"):
            pass
        assert obs.spans() == []

    def test_drain_ships_deltas_only(self):
        obs.activate_worker({"trace": True, "profile": True, "run_id": "r"})
        with obs.stage("match"):
            obs.count("ticks", 2)
        first = obs.drain_worker_blob()
        assert [span["name"] for span in first["spans"]] == ["match"]
        assert first["counters"] == {"ticks": 2}
        assert first["stage_entries"] == {"match": 1}

        with obs.stage("cover"):
            obs.count("ticks", 1)
        second = obs.drain_worker_blob()
        assert [span["name"] for span in second["spans"]] == ["cover"]
        assert second["counters"] == {"ticks": 1}
        assert second["stage_entries"] == {"cover": 1}
        assert "match" not in second["stage_seconds"]

    def test_drain_disabled_returns_none(self):
        assert obs.drain_worker_blob() is None

    def test_merge_blob_folds_spans_counters_and_stages(self):
        obs.activate_worker({"trace": True, "profile": True, "run_id": "r"})
        with obs.stage("match"):
            obs.count("ticks", 2)
        blob = obs.drain_worker_blob()

        obs.reset()
        obs.enable_tracing()
        obs.enable_profile(reset=False)
        with obs.stage("match"):
            obs.count("ticks", 1)
        obs.merge_blob(blob)
        assert obs.counters() == {"ticks": 3}
        snapshot = obs.profile_snapshot()
        assert snapshot["entries"] == {"match": 2}
        assert len(obs.spans()) == 2

    def test_merge_blob_accepts_none(self):
        obs.merge_blob(None)  # disabled workers ship nothing
        assert obs.spans() == []

    def test_merge_is_order_independent(self):
        def blob(pid, names):
            return {
                "pid": pid,
                "spans": [
                    SpanRecord(
                        span_id=index,
                        parent_id=None,
                        name=name,
                        category="job",
                        start_us=1000 + index,
                        duration_us=10,
                        pid=pid,
                        tid=1,
                    ).as_dict()
                    for index, name in enumerate(names)
                ],
                "counters": {"ticks": len(names)},
                "stage_seconds": {},
                "stage_entries": {},
            }

        blob_a = blob(111, ["a1", "a2"])
        blob_b = blob(222, ["b1"])

        obs.enable_tracing()
        obs.merge_blob(blob_a)
        obs.merge_blob(blob_b)
        forward = {(r.pid, r.span_id, r.name) for r in obs.spans()}
        forward_counters = obs.counters()

        obs.reset()
        obs.enable_tracing()
        obs.merge_blob(blob_b)
        obs.merge_blob(blob_a)
        assert {(r.pid, r.span_id, r.name) for r in obs.spans()} == forward
        assert obs.counters() == forward_counters

    def test_span_record_round_trips_through_dict(self):
        record = SpanRecord(
            span_id=7,
            parent_id=3,
            name="job:x",
            category="job",
            start_us=123456,
            duration_us=789,
            pid=42,
            tid=9,
            attributes={"nodes": 10},
            events=[(123460, "retry", {"attempt": 1})],
        )
        assert SpanRecord.from_dict(record.as_dict()) == record


class TestProfileSnapshotShape:
    def test_snapshot_keys_are_sorted_and_ints_stay_ints(self):
        obs.enable_profile()
        with obs.stage("zeta"):
            pass
        with obs.stage("alpha"):
            pass
        obs.count("whole", 2)
        obs.count("fraction", 0.5)
        snapshot = obs.profile_snapshot()
        assert list(snapshot["stages"]) == ["alpha", "zeta"]
        assert list(snapshot["entries"]) == ["alpha", "zeta"]
        assert snapshot["counters"] == {"fraction": 0.5, "whole": 2}
        assert isinstance(snapshot["counters"]["whole"], int)
        assert set(snapshot) == {"stages", "entries", "counters", "total_seconds"}
