"""Tests for the Table-3 / Figure-6 experiments on a fast benchmark subset.

The full 15-benchmark sweep is exercised by ``benchmarks/``; these tests run
the complete flow end to end on the small XOR-rich and control-logic
benchmarks so that the headline trends of the paper are checked in the
regular test suite within a few seconds.
"""

import pytest

from repro.core.families import LogicFamily
from repro.experiments.figure6 import figure6_from_table3
from repro.experiments.report import render_comparison, render_figure6, render_table3
from repro.experiments.table3 import run_table3

SUBSET = ("add-16", "C1355", "t481")


@pytest.fixture(scope="module")
def table3_subset():
    return run_table3(benchmark_names=SUBSET)


class TestTable3Experiment:
    def test_all_requested_benchmarks_present(self, table3_subset):
        assert {row.name for row in table3_subset.rows} == set(SUBSET)
        for row in table3_subset.rows:
            assert set(row.results) == {
                LogicFamily.TG_STATIC,
                LogicFamily.TG_PSEUDO,
                LogicFamily.CMOS,
            }

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(KeyError):
            run_table3(benchmark_names=("nonexistent",))

    def test_every_mapping_is_nonempty(self, table3_subset):
        for row in table3_subset.rows:
            for stats in row.results.values():
                assert stats.gates > 0
                assert stats.area > 0
                assert stats.levels > 0
                assert stats.normalized_delay > 0
                assert stats.absolute_delay_ps == pytest.approx(
                    stats.normalized_delay
                    * (0.59 if stats is not row.results[LogicFamily.CMOS] else 3.0)
                )

    def test_cntfet_families_beat_cmos_on_gates_and_area(self, table3_subset):
        # The headline Table-3 trend, checked per benchmark.
        for row in table3_subset.rows:
            cmos = row.results[LogicFamily.CMOS]
            for family in (LogicFamily.TG_STATIC, LogicFamily.TG_PSEUDO):
                ours = row.results[family]
                assert ours.gates < cmos.gates, row.name
                assert ours.area < cmos.area, row.name

    def test_absolute_speedup_over_cmos(self, table3_subset):
        # Technology factor (tau 0.59 vs 3.0 ps) plus design factor: every
        # benchmark must show a substantial absolute speed-up.
        for row in table3_subset.rows:
            assert row.speedup_vs_cmos(LogicFamily.TG_STATIC) > 2.0, row.name

    def test_static_faster_pseudo_smaller(self, table3_subset):
        static_delay = table3_subset.average(LogicFamily.TG_STATIC, "absolute_delay_ps")
        pseudo_delay = table3_subset.average(LogicFamily.TG_PSEUDO, "absolute_delay_ps")
        static_area = table3_subset.average(LogicFamily.TG_STATIC, "area")
        pseudo_area = table3_subset.average(LogicFamily.TG_PSEUDO, "area")
        assert static_delay < pseudo_delay
        assert pseudo_area < static_area

    def test_adder_speedup_close_to_paper(self, table3_subset):
        # Paper Figure 6: add-16 speed-up ~6.9x for the static family; the
        # adders are exact reconstructions so the measured value should land
        # in the same range.
        row = table3_subset.row("add-16")
        assert row.speedup_vs_cmos(LogicFamily.TG_STATIC) == pytest.approx(6.9, rel=0.35)

    def test_improvement_accessors(self, table3_subset):
        row = table3_subset.row("add-16")
        assert 0 < row.improvement_vs_cmos(LogicFamily.TG_STATIC, "gates") < 1
        assert table3_subset.average_improvement(LogicFamily.TG_STATIC, "area") > 0
        with pytest.raises(KeyError):
            table3_subset.row("missing")


class TestFigure6AndReports:
    def test_figure6_series_consistent_with_table3(self, table3_subset):
        figure = figure6_from_table3(table3_subset)
        assert figure.benchmark_names == tuple(r.name for r in table3_subset.rows)
        for i, name in enumerate(figure.benchmark_names):
            row = table3_subset.row(name)
            assert figure.static_speedups[i] == pytest.approx(
                row.speedup_vs_cmos(LogicFamily.TG_STATIC)
            )
        assert figure.average_static_speedup > figure.average_pseudo_speedup * 0.8
        series = figure.series()
        assert set(series) == set(SUBSET)
        assert figure.paper_average_static_speedup == pytest.approx(7.15, abs=0.1)

    def test_reports_render(self, table3_subset):
        table_text = render_table3(table3_subset)
        assert "add-16" in table_text and "paper" in table_text.lower()
        figure_text = render_figure6(figure6_from_table3(table3_subset))
        assert "Average" in figure_text
        comparison = render_comparison(table3_subset)
        assert "[ok]" in comparison
        assert "FAIL" not in comparison
