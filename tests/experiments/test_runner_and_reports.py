"""Tests for the experiment runner CLI and the report rendering helpers."""

import json

import pytest

from repro.experiments.runner import main
from repro.experiments.report import render_table2
from repro.experiments.table2 import run_table2


class TestRunnerCli:
    def test_table2_only_run(self, capsys):
        exit_code = main(["--skip-table3", "--no-cache"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "Table 2" in captured
        assert "CNTFET TG static" in captured
        assert "total runtime" in captured

    def test_subset_run_includes_table3_and_figure6(self, capsys, tmp_path):
        exit_code = main(["add-16", "--cache-dir", str(tmp_path)])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "Table 3" in captured
        assert "Figure 6" in captured
        assert "add-16" in captured
        assert "[ok]" in captured
        # The run populated the content-addressed cache.
        assert list(tmp_path.glob("*.json"))

    def test_parallel_jobs_and_json_artifacts(self, capsys, tmp_path):
        artifacts = tmp_path / "artifacts"
        exit_code = main(
            [
                "add-16",
                "--jobs",
                "2",
                "--cache-dir",
                str(tmp_path / "cache"),
                "--json",
                str(artifacts),
            ]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "wrote" in captured
        for name in ("table2.json", "table3.json", "figure6.json"):
            payload = json.loads((artifacts / name).read_text())
            assert payload

    def test_skip_table3_writes_no_table3_artifact(self, capsys, tmp_path):
        artifacts = tmp_path / "artifacts"
        exit_code = main(["--skip-table3", "--no-cache", "--json", str(artifacts)])
        capsys.readouterr()
        assert exit_code == 0
        assert (artifacts / "table2.json").exists()
        assert not (artifacts / "table3.json").exists()

    def test_unknown_benchmark_raises(self):
        with pytest.raises(KeyError):
            main(["not-a-benchmark", "--no-cache"])

    def test_list_flows(self, capsys):
        exit_code = main(["--list-flows"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        for flow in ("none", "quick", "resyn2rs", "deep"):
            assert flow in captured
        assert "passes:" in captured
        assert "Table 2" not in captured  # listing flows runs no experiments

    def test_flow_selection_runs_and_caches_separately(self, capsys, tmp_path):
        artifacts = tmp_path / "artifacts"
        exit_code = main(
            ["add-16", "--flow", "quick", "--cache-dir", str(tmp_path),
             "--json", str(artifacts)]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "[flow: quick; objective: delay]" in captured
        assert "add-16" in captured
        # The artifact records which flow produced it.
        assert json.loads((artifacts / "table3.json").read_text())["flow"] == "quick"
        quick_entries = set(tmp_path.glob("*.json"))
        assert quick_entries
        exit_code = main(["add-16", "--cache-dir", str(tmp_path)])
        capsys.readouterr()
        assert exit_code == 0
        # The default resyn2rs run added new cache entries of its own.
        assert set(tmp_path.glob("*.json")) > quick_entries

    def test_unknown_flow_rejected(self):
        with pytest.raises(KeyError):
            main(["--flow", "warp-speed", "--no-cache"])


class TestReportDetails:
    def test_per_cell_rendering_includes_paper_columns(self):
        table2 = run_table2()
        text = render_table2(table2, per_cell=True)
        assert "paper: T=" in text
        # Every Table-1 id appears in the per-cell dump of the static family.
        for fid in ("F00", "F16", "F29", "F45"):
            assert fid in text
