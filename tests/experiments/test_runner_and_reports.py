"""Tests for the experiment runner CLI and the report rendering helpers."""

import json

import pytest

from repro.experiments.runner import main
from repro.experiments.report import render_table2
from repro.experiments.table2 import run_table2


class TestRunnerCli:
    def test_table2_only_run(self, capsys):
        exit_code = main(["--skip-table3", "--no-cache"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "Table 2" in captured
        assert "CNTFET TG static" in captured
        assert "total runtime" in captured

    def test_subset_run_includes_table3_and_figure6(self, capsys, tmp_path):
        exit_code = main(["add-16", "--cache-dir", str(tmp_path)])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "Table 3" in captured
        assert "Figure 6" in captured
        assert "add-16" in captured
        assert "[ok]" in captured
        # The run populated the content-addressed cache (sharded layout).
        assert list(tmp_path.glob("??/??/*.json"))

    def test_parallel_jobs_and_json_artifacts(self, capsys, tmp_path):
        artifacts = tmp_path / "artifacts"
        exit_code = main(
            [
                "add-16",
                "--jobs",
                "2",
                "--cache-dir",
                str(tmp_path / "cache"),
                "--json",
                str(artifacts),
            ]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "wrote" in captured
        for name in ("table2.json", "table3.json", "figure6.json"):
            payload = json.loads((artifacts / name).read_text())
            assert payload

    def test_skip_table3_writes_no_table3_artifact(self, capsys, tmp_path):
        artifacts = tmp_path / "artifacts"
        exit_code = main(["--skip-table3", "--no-cache", "--json", str(artifacts)])
        capsys.readouterr()
        assert exit_code == 0
        assert (artifacts / "table2.json").exists()
        assert not (artifacts / "table3.json").exists()

    def test_unknown_benchmark_raises(self):
        with pytest.raises(KeyError):
            main(["not-a-benchmark", "--no-cache"])

    def test_list_flows(self, capsys):
        exit_code = main(["--list-flows"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        for flow in ("none", "quick", "resyn2rs", "deep"):
            assert flow in captured
        assert "passes:" in captured
        assert "Table 2" not in captured  # listing flows runs no experiments

    def test_flow_selection_runs_and_caches_separately(self, capsys, tmp_path):
        artifacts = tmp_path / "artifacts"
        exit_code = main(
            ["add-16", "--flow", "quick", "--cache-dir", str(tmp_path),
             "--json", str(artifacts)]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "[flow: quick; objective: delay]" in captured
        assert "add-16" in captured
        # The artifact records which flow produced it.
        assert json.loads((artifacts / "table3.json").read_text())["flow"] == "quick"
        quick_entries = set(tmp_path.glob("??/??/*.json"))
        assert quick_entries
        exit_code = main(["add-16", "--cache-dir", str(tmp_path)])
        capsys.readouterr()
        assert exit_code == 0
        # The default resyn2rs run added new cache entries of its own.
        assert set(tmp_path.glob("??/??/*.json")) > quick_entries

    def test_unknown_flow_rejected(self):
        with pytest.raises(KeyError):
            main(["--flow", "warp-speed", "--no-cache"])

    def test_map_rounds_recorded_and_never_worse(self, capsys, tmp_path):
        base = tmp_path / "base"
        recovered = tmp_path / "recovered"
        assert main(["add-16", "t481", "--no-cache", "--json", str(base)]) == 0
        assert (
            main(
                ["add-16", "t481", "--no-cache", "--map-rounds", "2",
                 "--json", str(recovered)]
            )
            == 0
        )
        captured = capsys.readouterr().out
        assert "recovery: 2 round(s) of auto" in captured
        round0 = json.loads((base / "table3.json").read_text())
        round2 = json.loads((recovered / "table3.json").read_text())
        assert "map_rounds" not in round0
        assert round2["map_rounds"] == 2 and round2["map_recovery"] == "auto"
        for row0, row2 in zip(round0["rows"], round2["rows"]):
            for family, stats0 in row0["results"].items():
                stats2 = row2["results"][family]
                assert stats2["area"] <= stats0["area"] + 1e-9
                assert (
                    stats2["normalized_delay"]
                    <= stats0["normalized_delay"] + 1e-9
                )

    def test_negative_map_rounds_rejected(self):
        with pytest.raises(SystemExit):
            main(["--map-rounds", "-1", "--no-cache"])

    def test_cache_stats_and_retry_flags(self, capsys, tmp_path):
        exit_code = main(
            ["add-16", "--cache-dir", str(tmp_path), "--cache-stats",
             "--job-timeout", "120", "--job-retries", "1"]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "robustness counters:" in captured
        blob = captured.split("robustness counters:", 1)[1]
        stats = json.loads(blob[: blob.index("\n}") + 2])
        assert stats["cache"]["puts"] > 0
        assert stats["cache"]["corrupt"] == 0
        assert stats["pool_rebuilds"] == 0
        assert stats["failures"] == []

    def test_negative_job_retries_rejected(self):
        with pytest.raises(SystemExit):
            main(["--job-retries", "-1", "--no-cache"])

    def test_extra_benchmark_flows_through_the_runner(self, capsys, tmp_path):
        from repro.bench.registry import benchmark_by_name, unregister_benchmark
        from repro.synthesis.blif import write_blif

        blif = tmp_path / "userckt.blif"
        blif.write_text(write_blif(benchmark_by_name("add-16").build()))
        artifacts = tmp_path / "artifacts"
        try:
            exit_code = main(
                ["userckt", "--no-cache", "--extra-benchmark", str(blif),
                 "--json", str(artifacts)]
            )
        finally:
            unregister_benchmark("userckt")
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "[extra benchmarks: userckt]" in captured
        payload = json.loads((artifacts / "table3.json").read_text())
        assert [row["name"] for row in payload["rows"]] == ["userckt"]
        # No paper row: the Figure-6 series must simply skip the circuit.
        figure6 = json.loads((artifacts / "figure6.json").read_text())
        assert "userckt" not in figure6["series"]

    def test_extra_benchmark_rejects_malformed_blif(self, tmp_path):
        bad = tmp_path / "bad.blif"
        bad.write_text(".model broken\n.latch a b\n.end\n")
        with pytest.raises(SystemExit):
            main(["--extra-benchmark", str(bad), "--no-cache"])


class TestReportDetails:
    def test_per_cell_rendering_includes_paper_columns(self):
        table2 = run_table2()
        text = render_table2(table2, per_cell=True)
        assert "paper: T=" in text
        # Every Table-1 id appears in the per-cell dump of the static family.
        for fid in ("F00", "F16", "F29", "F45"):
            assert fid in text
