"""Tests for the experiment runner CLI and the report rendering helpers."""

import pytest

from repro.experiments.runner import main
from repro.experiments.report import render_table2
from repro.experiments.table2 import run_table2


class TestRunnerCli:
    def test_table2_only_run(self, capsys):
        exit_code = main(["--skip-table3"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "Table 2" in captured
        assert "CNTFET TG static" in captured
        assert "total runtime" in captured

    def test_subset_run_includes_table3_and_figure6(self, capsys):
        exit_code = main(["add-16"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "Table 3" in captured
        assert "Figure 6" in captured
        assert "add-16" in captured
        assert "[ok]" in captured

    def test_unknown_benchmark_raises(self):
        with pytest.raises(KeyError):
            main(["not-a-benchmark"])


class TestReportDetails:
    def test_per_cell_rendering_includes_paper_columns(self):
        table2 = run_table2()
        text = render_table2(table2, per_cell=True)
        assert "paper: T=" in text
        # Every Table-1 id appears in the per-cell dump of the static family.
        for fid in ("F00", "F16", "F29", "F45"):
            assert fid in text
