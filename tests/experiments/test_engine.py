"""Tests for the parallel, cache-aware experiment engine."""

import json

import pytest

from repro.bench.registry import benchmark_by_name
from repro.core.families import LogicFamily
from repro.experiments.engine import (
    CACHE_SCHEMA,
    CharacterizationJob,
    ExperimentEngine,
    MapJob,
    ResultCache,
    aig_fingerprint,
    default_cache_dir,
    figure6_payload,
    library_fingerprint,
    table2_payload,
    table3_payload,
)
from repro.experiments.figure6 import figure6_from_table3
from repro.experiments.table3 import run_table3
from repro.core.library import build_library

SUBSET = ("add-16",)
FAMILIES = (LogicFamily.TG_STATIC, LogicFamily.CMOS)


def _jobs():
    return [MapJob("add-16", family) for family in FAMILIES]


def _cache_entries(directory):
    """Committed entries of a sharded cache directory (sorted)."""
    return sorted(directory.glob("??/??/*.json"))


def _stats_view(result):
    return [(row.name, row.aig_nodes, row.aig_depth, row.results) for row in result.rows]


class TestFingerprints:
    def test_aig_fingerprint_is_structural(self):
        a = benchmark_by_name("add-16").build()
        b = benchmark_by_name("add-16").build()
        assert aig_fingerprint(a) == aig_fingerprint(b)
        c = benchmark_by_name("add-32").build()
        assert aig_fingerprint(a) != aig_fingerprint(c)

    def test_library_fingerprint_distinguishes_families(self):
        static = library_fingerprint(build_library(LogicFamily.TG_STATIC))
        cmos = library_fingerprint(build_library(LogicFamily.CMOS))
        assert static != cmos
        assert static == library_fingerprint(build_library(LogicFamily.TG_STATIC))

    def test_job_keys_separate_by_family_and_objective(self, tmp_path):
        engine = ExperimentEngine(cache_dir=tmp_path)
        keys = {
            engine.map_job_key(MapJob("add-16", LogicFamily.TG_STATIC)),
            engine.map_job_key(MapJob("add-16", LogicFamily.CMOS)),
            engine.map_job_key(MapJob("add-16", LogicFamily.TG_STATIC, objective="area")),
            engine.map_job_key(MapJob("add-32", LogicFamily.TG_STATIC)),
        }
        assert len(keys) == 4

    def test_recovered_jobs_cached_separately_and_replayed(self, tmp_path):
        jobs = [
            MapJob("add-16", LogicFamily.TG_STATIC, rounds=0),
            MapJob("add-16", LogicFamily.TG_STATIC, rounds=2),
        ]
        first = ExperimentEngine(cache_dir=tmp_path).run_map_jobs(jobs)
        again = ExperimentEngine(cache_dir=tmp_path).run_map_jobs(jobs)
        round0, recovered = jobs
        assert not first[round0].cached and again[round0].cached
        assert not first[recovered].cached and again[recovered].cached
        assert first[recovered].stats == again[recovered].stats
        # Recovery never worsens the delay-objective circuit.
        assert first[recovered].stats.area <= first[round0].stats.area + 1e-9
        assert (
            first[recovered].stats.normalized_delay
            <= first[round0].stats.normalized_delay + 1e-9
        )

    def test_job_keys_separate_by_flow(self, tmp_path):
        engine = ExperimentEngine(cache_dir=tmp_path)
        keys = {
            engine.map_job_key(MapJob("add-16", LogicFamily.TG_STATIC, flow=flow))
            for flow in ("resyn2rs", "quick", "deep", "none")
        }
        assert len(keys) == 4

    def test_job_key_tracks_flow_definition(self, tmp_path, monkeypatch):
        # Redefining a flow (different pass pipeline under the same name)
        # must change the cache key, invalidating stale artifacts.
        from dataclasses import replace

        from repro.flow import get_flow, register_flow

        engine = ExperimentEngine(cache_dir=tmp_path)
        job = MapJob("add-16", LogicFamily.TG_STATIC, flow="quick")
        before = engine.map_job_key(job)
        original = get_flow("quick")
        try:
            register_flow(replace(original, max_rounds=2, round_passes=("rewrite",)),
                          replace=True)
            assert engine.map_job_key(job) != before
        finally:
            register_flow(original, replace=True)
        assert engine.map_job_key(job) == before


class TestCache:
    def test_miss_then_hit(self, tmp_path):
        engine = ExperimentEngine(cache_dir=tmp_path)
        first = engine.run_map_jobs(_jobs())
        assert all(not result.cached for result in first.values())
        assert _cache_entries(tmp_path)

        again = ExperimentEngine(cache_dir=tmp_path).run_map_jobs(_jobs())
        assert all(result.cached for result in again.values())
        for job in _jobs():
            assert first[job].stats == again[job].stats
            assert first[job].aig_nodes == again[job].aig_nodes

    def test_corrupted_entries_are_recomputed(self, tmp_path):
        engine = ExperimentEngine(cache_dir=tmp_path)
        engine.run_map_jobs(_jobs())
        entries = _cache_entries(tmp_path)
        entries[0].write_text("{ this is not json")
        entries[1].write_text(json.dumps({"schema": CACHE_SCHEMA + 999, "key": "x", "payload": {}}))

        redo_engine = ExperimentEngine(cache_dir=tmp_path)
        redone = redo_engine.run_map_jobs(_jobs())
        assert sum(1 for result in redone.values() if not result.cached) == 2
        # The unreadable entry was quarantined, the stale-schema one was a miss.
        assert redo_engine.cache.stats.corrupt == 1
        assert len(list(redo_engine.cache.quarantine_dir().iterdir())) == 1
        # The corrupted files were replaced with valid entries.
        fresh = ExperimentEngine(cache_dir=tmp_path).run_map_jobs(_jobs())
        assert all(result.cached for result in fresh.values())

    def test_wrong_key_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("a" * 64, {"stats": {}})
        # Rename the entry so its embedded key no longer matches the filename.
        target = cache.path_for("b" * 64)
        target.parent.mkdir(parents=True, exist_ok=True)
        cache.path_for("a" * 64).rename(target)
        assert cache.get("b" * 64) is None

    def test_disabled_cache_writes_nothing(self, tmp_path):
        engine = ExperimentEngine(cache_dir=tmp_path, use_cache=False)
        engine.run_map_jobs(_jobs())
        assert not _cache_entries(tmp_path)

    def test_cached_flow_does_not_satisfy_other_flows(self, tmp_path):
        # A cached resyn2rs result must not be served for a quick request.
        ExperimentEngine(cache_dir=tmp_path).run_map_jobs(_jobs())
        quick_jobs = [
            MapJob("add-16", family, flow="quick") for family in FAMILIES
        ]
        first_quick = ExperimentEngine(cache_dir=tmp_path).run_map_jobs(quick_jobs)
        assert all(not result.cached for result in first_quick.values())
        second_quick = ExperimentEngine(cache_dir=tmp_path).run_map_jobs(quick_jobs)
        assert all(result.cached for result in second_quick.values())

    def test_default_cache_dir_honours_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "override"))
        assert default_cache_dir() == tmp_path / "override"
        monkeypatch.delenv("REPRO_CACHE_DIR")
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
        assert default_cache_dir() == tmp_path / "xdg" / "repro" / "experiments"


class TestCacheHardening:
    """The hardened ResultCache: sharding, checksums, quarantine, eviction."""

    def test_entries_live_in_two_level_shards(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "deadbeef" * 8
        cache.put(key, {"value": 1})
        assert cache.path_for(key) == tmp_path / "de" / "ad" / f"{key}.json"
        assert cache.path_for(key).exists()
        assert cache.get(key) == {"value": 1}
        assert cache.stats.hits == 1 and cache.stats.puts == 1

    def test_concurrent_same_key_puts_keep_entry_valid(self, tmp_path):
        # Regression for the shared ".tmp" staging-file collision: many
        # writers racing on one key must never leave a truncated entry or
        # stray staging files behind.
        import threading

        cache = ResultCache(tmp_path)
        key = "ab" * 32
        observed = []

        def writer(worker):
            local = ResultCache(tmp_path)
            for i in range(25):
                local.put(key, {"worker": worker, "i": i})
                observed.append(local.get(key))

        threads = [threading.Thread(target=writer, args=(w,)) for w in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert all(isinstance(payload, dict) for payload in observed)
        assert cache.stats.corrupt == 0
        assert isinstance(cache.get(key), dict)
        assert not list(tmp_path.rglob("*.tmp"))

    def test_checksum_mismatch_is_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "cd" * 32
        cache.put(key, {"value": 1})
        path = cache.path_for(key)
        entry = json.loads(path.read_text())
        entry["payload"]["value"] = 2  # tamper without updating the checksum
        path.write_text(json.dumps(entry))

        assert cache.get(key) is None
        assert cache.stats.corrupt == 1
        assert not path.exists()  # moved aside, not left to fail forever
        assert len(list(cache.quarantine_dir().iterdir())) == 1
        # The follow-up read is a plain miss, not another corruption event.
        assert cache.get(key) is None
        assert cache.stats.corrupt == 1 and cache.stats.misses == 1

    def test_stale_schema_is_a_miss_not_corruption(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "ef" * 32
        cache.put(key, {"value": 1})
        path = cache.path_for(key)
        path.write_text(json.dumps({"schema": CACHE_SCHEMA - 1, "key": key,
                                    "payload": {}, "checksum": "x"}))
        assert cache.get(key) is None
        assert cache.stats.corrupt == 0 and cache.stats.misses == 1
        assert path.exists()  # left in place for the next put to overwrite

    def test_size_budget_evicts_least_recently_used(self, tmp_path):
        import os as _os

        cache = ResultCache(tmp_path)  # no budget while seeding
        keys = [f"{i:02x}" * 32 for i in range(4)]
        for stamp, key in enumerate(keys):
            cache.put(key, {"value": key})
            _os.utime(cache.path_for(key), (100.0 + stamp, 100.0 + stamp))
        entry_size = cache.path_for(keys[0]).stat().st_size
        # A freshly read entry becomes most-recent and must survive.
        assert cache.get(keys[0]) is not None

        bounded = ResultCache(tmp_path, max_bytes=3 * entry_size + 1)
        bounded.put("ff" * 32, {"value": "new"})
        assert bounded.stats.evicted == 2
        survivors = {p.name for p in _cache_entries(tmp_path)}
        assert f"{keys[0]}.json" in survivors  # refreshed by the hit above
        assert f"{keys[1]}.json" not in survivors
        assert f"{keys[2]}.json" not in survivors
        assert f"{'ff' * 32}.json" in survivors

    def test_cache_events_mirrored_to_profiler_counters(self, tmp_path):
        from repro import profiling

        cache = ResultCache(tmp_path)
        profiling.enable()
        try:
            cache.put("aa" * 32, {"value": 1})
            cache.get("aa" * 32)
            cache.get("bb" * 32)
            counters = profiling.snapshot()["counters"]
        finally:
            profiling.disable()
        assert counters["cache.put"] == 1
        assert counters["cache.hit"] == 1
        assert counters["cache.miss"] == 1


class TestParallelExecution:
    def test_parallel_results_bit_identical_to_sequential(self):
        sequential = ExperimentEngine(jobs=1, use_cache=False).run_table3(
            benchmark_names=SUBSET
        )
        parallel = ExperimentEngine(jobs=3, use_cache=False).run_table3(
            benchmark_names=SUBSET
        )
        assert _stats_view(sequential) == _stats_view(parallel)

    def test_parallel_table2_identical_to_sequential(self):
        sequential = ExperimentEngine(jobs=1, use_cache=False).run_table2()
        parallel = ExperimentEngine(jobs=4, use_cache=False).run_table2()
        assert sequential.summaries == parallel.summaries
        assert sequential.rows == parallel.rows

    def test_engine_matches_legacy_run_table3(self):
        legacy = run_table3(benchmark_names=SUBSET)
        engine = ExperimentEngine(jobs=2, use_cache=False).run_table3(
            benchmark_names=SUBSET
        )
        assert _stats_view(legacy) == _stats_view(engine)

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(KeyError):
            ExperimentEngine(use_cache=False).run_table3(benchmark_names=("nope",))

    def test_unknown_flow_rejected_before_work(self):
        with pytest.raises(KeyError):
            ExperimentEngine(use_cache=False).run_table3(
                benchmark_names=SUBSET, flow="no-such-flow"
            )

    def test_explicit_flow_conflicts_with_optimize_first_false(self):
        # optimize_first=False must not silently discard an explicit flow.
        with pytest.raises(ValueError, match="conflicts"):
            ExperimentEngine(use_cache=False).run_table3(
                benchmark_names=SUBSET, flow="deep", optimize_first=False
            )

    def test_flows_run_end_to_end_with_distinct_results_or_stats(self):
        # Both named flows run through the engine; `none` must reflect the
        # unoptimized subject graph while resyn2rs shrinks or preserves it.
        engine = ExperimentEngine(use_cache=False)
        via_resyn = engine.run_table3(benchmark_names=SUBSET)
        via_quick = engine.run_table3(benchmark_names=SUBSET, flow="quick")
        via_none = engine.run_table3(benchmark_names=SUBSET, optimize_first=False)
        assert via_none.rows[0].aig_nodes >= via_resyn.rows[0].aig_nodes
        for result in (via_resyn, via_quick, via_none):
            for row in result.rows:
                for stats in row.results.values():
                    assert stats.gates > 0


class TestTable2Jobs:
    def test_characterization_cache_round_trip(self, tmp_path):
        engine = ExperimentEngine(cache_dir=tmp_path)
        first = engine.run_table2()
        assert _cache_entries(tmp_path)
        second = ExperimentEngine(cache_dir=tmp_path).run_table2()
        assert first.summaries == second.summaries
        assert first.rows == second.rows
        assert first.paper_averages == second.paper_averages

    def test_characterization_job_key_stable(self, tmp_path):
        engine = ExperimentEngine(cache_dir=tmp_path)
        job = CharacterizationJob(LogicFamily.CMOS)
        assert engine.characterization_job_key(job) == engine.characterization_job_key(job)


class TestArtifacts:
    def test_write_artifacts_emits_valid_json(self, tmp_path):
        engine = ExperimentEngine(cache_dir=tmp_path / "cache")
        table2 = engine.run_table2(families=(LogicFamily.TG_STATIC, LogicFamily.CMOS))
        table3 = engine.run_table3(benchmark_names=SUBSET)
        figure6 = figure6_from_table3(table3)
        written = engine.write_artifacts(
            tmp_path / "artifacts", table2=table2, table3=table3, figure6=figure6
        )
        assert {path.name for path in written} == {
            "table2.json",
            "table3.json",
            "figure6.json",
        }
        loaded = {path.name: json.loads(path.read_text()) for path in written}
        assert "add-16" in {row["name"] for row in loaded["table3.json"]["rows"]}
        assert loaded["table3.json"]["flow"] == "resyn2rs"
        assert LogicFamily.TG_STATIC.value in loaded["table2.json"]["families"]
        assert loaded["figure6.json"]["series"]["add-16"]["static"] > 1.0

    def test_table3_artifact_records_selected_flow(self, tmp_path):
        engine = ExperimentEngine(use_cache=False)
        table3 = engine.run_table3(benchmark_names=SUBSET, flow="quick")
        assert table3.flow == "quick"
        assert table3_payload(table3)["flow"] == "quick"
        none_result = engine.run_table3(benchmark_names=SUBSET, optimize_first=False)
        assert none_result.flow == "none"

    def test_payload_helpers_are_json_serializable(self, tmp_path):
        engine = ExperimentEngine(cache_dir=tmp_path)
        table3 = engine.run_table3(benchmark_names=SUBSET)
        for payload in (
            table3_payload(table3),
            table2_payload(engine.run_table2(families=(LogicFamily.CMOS,))),
            figure6_payload(figure6_from_table3(table3)),
        ):
            assert json.loads(json.dumps(payload)) == payload


class TestSharedMemoryTransport:
    """The shared-memory subject transport and the worker cache-epoch protocol."""

    def test_publish_resolve_roundtrip_through_attach_path(self):
        """A handle resolved in a foreign process (simulated by clearing the
        local registry) rebuilds a structurally identical subject with the
        published arrays installed, and maps identically."""
        import numpy as np

        from repro.experiments import shm
        from repro.flow import run_flow
        from repro.synthesis.aig_array import aig_arrays
        from repro.synthesis.cuts import cut_set_for
        from repro.synthesis.mapper import technology_map
        from repro.synthesis.matcher import matcher_for

        aig = run_flow("resyn2rs", benchmark_by_name("add-16").build()).aig
        arrays = aig_arrays(aig)
        cut_set = cut_set_for(aig)
        key = f"{aig_fingerprint(aig)}:{cut_set.max_inputs}:{cut_set.cut_limit}"
        try:
            handle = shm.publish_subject(key, aig, arrays, cut_set)
        except OSError:
            pytest.skip("no usable shared memory on this platform")
        try:
            assert shm.resolve_subject(handle) is aig  # publisher answers locally
            shm._LOCAL.pop(key)  # simulate a worker: force the attach path
            rebuilt = shm.resolve_subject(handle)
            assert rebuilt is not aig
            assert aig_fingerprint(rebuilt) == aig_fingerprint(aig)
            assert rebuilt.pi_names == aig.pi_names
            assert rebuilt.po_names == aig.po_names
            r_arrays = aig_arrays(rebuilt)
            assert np.array_equal(r_arrays.fanin0, arrays.fanin0)
            assert np.array_equal(r_arrays.fanout, arrays.fanout)
            r_cuts = cut_set_for(rebuilt)  # must hit the installed memo
            assert np.array_equal(r_cuts.leaves, cut_set.leaves)
            assert np.array_equal(r_cuts.table, cut_set.table)
            library = build_library(LogicFamily.TG_STATIC)
            original = technology_map(aig, library, matcher=matcher_for(library))
            remapped = technology_map(rebuilt, library, matcher=matcher_for(library))
            assert [
                (g.output, g.cell_name, g.leaves, g.table, g.inverted)
                for g in original.gates
            ] == [
                (g.output, g.cell_name, g.leaves, g.table, g.inverted)
                for g in remapped.gates
            ]
            assert original.normalized_delay == remapped.normalized_delay
        finally:
            shm.drop_attachments()
            shm.release_subjects()
        assert shm.attachment_count() == 0
        assert shm.published_count() == 0

    def test_jobs2_shared_memory_smoke(self):
        """Fast-lane transport smoke: a --jobs 2 run over two benchmarks must
        publish subjects, drain the pool and stay bit-identical to jobs=1."""
        from repro.experiments import shm

        published = []
        original_publish = shm.publish_subject

        def counting_publish(key, aig, arrays, cut_set):
            handle = original_publish(key, aig, arrays, cut_set)
            published.append(key)
            return handle

        names = ("add-16", "t481")
        shm.publish_subject = counting_publish
        try:
            parallel = ExperimentEngine(jobs=2, use_cache=False).run_table3(
                benchmark_names=names, families=FAMILIES
            )
        finally:
            shm.publish_subject = original_publish
        sequential = ExperimentEngine(jobs=1, use_cache=False).run_table3(
            benchmark_names=names, families=FAMILIES
        )
        assert _stats_view(sequential) == _stats_view(parallel)
        assert len(published) == len(names)  # one segment per distinct subject
        assert shm.published_count() == 0  # released in the engine's finally

    def test_published_handle_carries_match_index(self):
        """Publishing ships the cut set's distinct-function match index
        (``fn_*`` segments); a worker-side resolve pre-installs it so the
        mapper never re-canonicalizes the subject's cut functions."""
        import numpy as np

        from repro.experiments import shm
        from repro.flow import run_flow
        from repro.synthesis.aig_array import aig_arrays
        from repro.synthesis.cuts import cut_set_for
        from repro.synthesis.matcher import cut_function_table

        aig = run_flow("resyn2rs", benchmark_by_name("add-16").build()).aig
        arrays = aig_arrays(aig)
        cut_set = cut_set_for(aig)
        key = f"{aig_fingerprint(aig)}:{cut_set.max_inputs}:{cut_set.cut_limit}"
        try:
            handle = shm.publish_subject(key, aig, arrays, cut_set)
        except OSError:
            pytest.skip("no usable shared memory on this platform")
        try:
            fields = {segment[0] for segment in handle.segments}
            assert {"fn_inverse", "fn_canon", "fn_cut_perm"} <= fields
            parent_table = cut_function_table(cut_set, arrays.and_nodes)
            shm._LOCAL.pop(key)  # simulate a worker: force the attach path
            rebuilt = shm.resolve_subject(handle)
            rebuilt_cuts = cut_set_for(rebuilt)
            installed = rebuilt_cuts.__dict__.get("_function_tables", {})
            assert True in installed
            worker_table = installed[True]
            assert np.array_equal(worker_table.inverse, parent_table.inverse)
            assert np.array_equal(worker_table.canon, parent_table.canon)
            assert np.array_equal(worker_table.cut_perm, parent_table.cut_perm)
            assert np.array_equal(worker_table.cut_phase, parent_table.cut_phase)
            assert np.array_equal(worker_table.reduced, parent_table.reduced)
            # The memoized entry is what the matcher consumes -- no rebuild.
            assert (
                cut_function_table(rebuilt_cuts, aig_arrays(rebuilt).and_nodes)
                is worker_table
            )
        finally:
            shm.drop_attachments()
            shm.release_subjects()

    def test_jobs4_with_match_index_is_byte_identical(self):
        """jobs=4 mapping through the shm-published match index must produce
        a byte-identical Table-3 artifact payload to the jobs=1 path."""
        names = ("add-16", "t481")
        parallel = ExperimentEngine(jobs=4, use_cache=False).run_table3(
            benchmark_names=names, families=FAMILIES
        )
        sequential = ExperimentEngine(jobs=1, use_cache=False).run_table3(
            benchmark_names=names, families=FAMILIES
        )
        assert json.dumps(
            table3_payload(sequential), indent=2, sort_keys=True
        ) == json.dumps(table3_payload(parallel), indent=2, sort_keys=True)

    def test_worker_cache_epoch_keeps_memos_bounded(self):
        """A long-lived worker must drop its per-process memos when the cache
        epoch rolls over, instead of accumulating them across job batches."""
        import repro.experiments.engine as engine_module
        from repro.experiments.engine import (
            _run_map_job,
            _worker_cache_footprint,
        )

        job_a = MapJob("add-16", LogicFamily.TG_STATIC)
        job_b = MapJob("t481", LogicFamily.TG_STATIC)
        saved_epoch = engine_module._WORKER_EPOCH
        try:
            # Simulate a pool worker initialized for epoch 1.
            engine_module._reset_worker_state(1)
            _run_map_job((job_a.spec(), 1, None))
            _run_map_job((job_b.spec(), 1, None))
            grown = _worker_cache_footprint()
            assert grown["optimized_aigs"] == 2
            assert grown["activity_reports"] == 2
            assert grown["cut_cache_entries"] > 0

            # Next batch: the epoch stamped on the job moves to 2; the
            # worker-side memos must reset instead of accumulating.
            _run_map_job((job_a.spec(), 2, None))
            bounded = _worker_cache_footprint()
            assert bounded["optimized_aigs"] == 1
            assert bounded["activity_reports"] == 1
            assert bounded["cut_cache_entries"] <= grown["cut_cache_entries"]

            # Same epoch again: warm memos are kept (no churn within a batch).
            _run_map_job((job_a.spec(), 2, None))
            assert _worker_cache_footprint()["optimized_aigs"] == 1
        finally:
            engine_module._reset_worker_state(0)
            engine_module._WORKER_EPOCH = saved_epoch

    def test_parent_in_process_jobs_do_not_reset_parent_memos(self):
        """jobs=1 (and the pool-failure fallback) execute in the parent, where
        _WORKER_EPOCH is None: the epoch check must never clear parent state."""
        import repro.experiments.engine as engine_module
        from repro.experiments.engine import _run_map_job

        assert engine_module._WORKER_EPOCH is None
        job = MapJob("add-16", LogicFamily.TG_STATIC)
        _run_map_job((job.spec(), 123456, None))
        assert ("add-16", "resyn2rs") in engine_module._OPTIMIZED_AIGS
        # A second job with a different epoch still must not clear anything.
        _run_map_job((job.spec(), 654321, None))
        assert ("add-16", "resyn2rs") in engine_module._OPTIMIZED_AIGS
