"""End-to-end observability: cross-process traces, profile merge, CLI flags.

The tracer unit tests live in ``tests/obs``; this module pins the contract
*through the engine and runner*: worker spans come home pid-tagged, cache
hits synthesize spans in the parent, a parallel ``--profile`` reports the
same per-job stage entries as a sequential one (the worker-snapshot merge
bugfix), fault handling leaves crash/retry markers in the trace, and the
CLI exporters write valid files while leaving the artifacts byte-identical.
"""

import json
import os

import pytest

from repro import obs, profiling
from repro.core.families import LogicFamily
from repro.experiments import faults
from repro.experiments.engine import ExperimentEngine, MapJob
from repro.experiments.faults import FaultPlan
from repro.experiments.resilience import RetryPolicy, run_resilient
from repro.experiments.runner import main
from tests.experiments.test_resilience import _crash_in_pool_workers

#: Small-but-parallel workload: four independent jobs on the fast adder.
FAMILIES = (
    LogicFamily.TG_STATIC,
    LogicFamily.TG_PSEUDO,
    LogicFamily.PASS_PSEUDO,
    LogicFamily.CMOS,
)

#: Retries resolve fast in tests; correctness must not depend on pacing.
FAST_POLICY = RetryPolicy(backoff_base=0.01, backoff_max=0.05)


def _jobs():
    return [MapJob("add-16", family) for family in FAMILIES]


def _result_view(results):
    return {
        job: (r.stats, r.power, r.aig_nodes, r.aig_depth)
        for job, r in results.items()
    }


@pytest.fixture(autouse=True)
def _clean_tracer():
    obs.reset()
    yield
    obs.reset()


class TestCrossProcessTrace:
    def test_parallel_run_ships_worker_spans_home(self):
        obs.enable_tracing()
        engine = ExperimentEngine(jobs=2, use_cache=False)
        engine.run_map_jobs(_jobs())
        spans = obs.spans()

        job_spans = [s for s in spans if s.category == "job"]
        assert len(job_spans) == len(FAMILIES)
        worker_pids = {s.pid for s in job_spans}
        assert os.getpid() not in worker_pids
        assert len(worker_pids) >= 2  # both workers contributed

        # The parent's scheduling spans frame the merged worker tracks.
        engine_spans = {s.name for s in spans if s.category == "engine"}
        assert "run_map_jobs" in engine_spans
        assert "prepare-parallel" in engine_spans
        parent_pids = {s.pid for s in spans if s.category == "engine"}
        assert parent_pids == {os.getpid()}

    def test_worker_job_spans_parent_their_stages(self):
        obs.enable_tracing()
        engine = ExperimentEngine(jobs=2, use_cache=False)
        engine.run_map_jobs(_jobs())
        spans = obs.spans()
        by_key = {(s.pid, s.span_id): s for s in spans}
        stage_spans = [s for s in spans if s.category == "stage"]
        assert stage_spans
        for stage in stage_spans:
            # Every stage recorded in a worker hangs under a span of the
            # same process (ids are only unique per pid).
            ancestor = stage
            while ancestor.parent_id is not None:
                ancestor = by_key[(ancestor.pid, ancestor.parent_id)]
            if stage.pid != os.getpid():
                assert ancestor.category == "job"

    def test_trace_is_deterministically_mergeable(self):
        obs.enable_tracing()
        engine = ExperimentEngine(jobs=2, use_cache=False)
        engine.run_map_jobs(_jobs())
        keys = [(s.pid, s.span_id) for s in obs.spans()]
        assert len(keys) == len(set(keys))  # (pid, id) namespacing holds

    def test_cache_hits_synthesize_parent_spans(self, tmp_path):
        jobs = _jobs()
        warm = ExperimentEngine(jobs=1, cache_dir=tmp_path)
        warm.run_map_jobs(jobs)

        obs.enable_tracing()
        engine = ExperimentEngine(jobs=2, cache_dir=tmp_path)
        engine.run_map_jobs(jobs)
        spans = obs.spans()
        hits = [s for s in spans if s.category == "cache"]
        assert len(hits) == len(jobs)
        assert {s.pid for s in hits} == {os.getpid()}
        assert all(s.name.startswith("cache-hit:add-16:") for s in hits)
        assert all("key" in s.attributes for s in hits)
        assert not [s for s in spans if s.category == "job"]

    def test_tracing_does_not_change_results(self):
        jobs = _jobs()
        plain = ExperimentEngine(jobs=2, use_cache=False).run_map_jobs(jobs)
        obs.enable_tracing()
        traced = ExperimentEngine(jobs=2, use_cache=False).run_map_jobs(jobs)
        assert _result_view(traced) == _result_view(plain)


class TestProfileMerge:
    """Satellite bugfix: --profile with --jobs > 1 must not drop worker
    stage timings."""

    def _profile(self, jobs):
        profiling.enable()
        try:
            ExperimentEngine(jobs=jobs, use_cache=False).run_map_jobs(_jobs())
            return profiling.snapshot()
        finally:
            profiling.disable()

    def test_parallel_profile_matches_sequential_entry_counts(self):
        sequential = self._profile(1)
        parallel = self._profile(4)
        # One entry per job for the per-job stages, both ways.  (optimize /
        # activity memoize per process, so their entry counts legitimately
        # differ between one process and four.)
        for stage in ("cuts", "match", "cover", "power", "verify"):
            assert parallel["entries"][stage] == sequential["entries"][stage], stage

    def test_parallel_profile_reports_nonzero_stage_seconds(self):
        parallel = self._profile(2)
        assert parallel["total_seconds"] > 0
        assert parallel["stages"]["match"] > 0
        assert parallel["stages"]["cover"] > 0


class TestFailureTelemetry:
    """Satellite bugfix: retry/crash/timeout/degradation counters flow
    through the counter API (and, when tracing, leave trace markers)."""

    @pytest.fixture
    def arm(self, tmp_path, monkeypatch):
        spool = tmp_path / "spool"
        spool.mkdir()

        def _arm(**kwargs):
            plan = FaultPlan(once_dir=str(spool), **kwargs)
            monkeypatch.setenv(faults.ENV_VAR, plan.to_json())
            return plan

        return _arm

    @pytest.mark.chaos
    def test_worker_kill_leaves_crash_markers_and_counters(self, arm):
        arm(kill_job=0)
        obs.enable_tracing()
        engine = ExperimentEngine(jobs=4, use_cache=False, retry_policy=FAST_POLICY)
        engine.run_map_jobs(_jobs())

        counters = obs.counters()
        assert counters["jobs.crash"] >= 1
        assert counters["jobs.retry"] >= 1
        assert counters["jobs.backoff_seconds"] > 0

        markers = [
            (name, attrs)
            for span in obs.spans()
            for _, name, attrs in span.events
        ]
        crash_markers = [m for m in markers if m[0] == "job.crash"]
        assert crash_markers
        assert all(m[1]["resolution"] == "retry" for m in crash_markers)
        assert all("attempt" in m[1] and "index" in m[1] for m in crash_markers)

    def test_exhausted_retries_count_degraded_inprocess(self):
        obs.enable_tracing()
        profiling.enable(reset=False)
        try:
            outcome = run_resilient(
                _crash_in_pool_workers,
                [(5, os.getpid()), (9, os.getpid())],
                jobs=2,
                policy=RetryPolicy(max_attempts=2, backoff_base=0.01),
            )
            counters = profiling.snapshot()["counters"]
        finally:
            profiling.disable()
        assert outcome.results == [4, 8]
        assert counters["jobs.degraded_inprocess"] == 2
        # max_attempts=2: every job crashes twice before degrading.
        assert counters["jobs.crash"] == 4
        assert counters["jobs.retry"] == 2
        assert counters["jobs.backoff_seconds"] > 0

        markers = [
            (name, attrs)
            for span in obs.spans()
            for _, name, attrs in span.events
        ] + [
            (span.name, span.attributes)
            for span in obs.spans()
            if span.category == "event"
        ]
        resolutions = [
            attrs["resolution"] for name, attrs in markers if name == "job.crash"
        ]
        assert resolutions.count("retry") == 2
        assert resolutions.count("in-process") == 2


class TestRunnerExporters:
    def _run(self, tmp_path, *extra):
        argv = [
            "add-16",
            "--cache-dir",
            str(tmp_path / "cache"),
            *extra,
        ]
        assert main(argv) == 0

    def test_trace_flag_writes_a_valid_chrome_trace(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        self._run(tmp_path, "--jobs", "2", "--trace", str(trace_path))
        payload = json.loads(trace_path.read_text())
        events = payload["traceEvents"]
        assert events
        pids = {e["pid"] for e in events}
        assert len(pids) >= 3  # parent + at least two workers
        tracks = {e["args"]["name"] for e in events if e["ph"] == "M"}
        assert "parent" in tracks
        assert any(t.startswith("worker-") for t in tracks)
        assert payload["otherData"]["run_id"]
        assert "[trace" in capsys.readouterr().out

    def test_metrics_out_reports_the_run(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RUN_ID", "metrics-run")
        metrics_path = tmp_path / "metrics.json"
        self._run(tmp_path, "--jobs", "2", "--metrics-out", str(metrics_path))
        report = json.loads(metrics_path.read_text())
        assert report["run_id"] == "metrics-run"
        assert report["jobs"]["executed"] > 0
        assert report["histograms"]["job_latency_ms"]["count"] > 0
        assert report["robustness"]["cache"]["misses"] > 0
        assert len(report["spans"]["pids"]) >= 3

    def test_events_out_writes_run_scoped_jsonl(self, tmp_path):
        events_path = tmp_path / "events.jsonl"
        self._run(tmp_path, "--events-out", str(events_path))
        lines = [json.loads(l) for l in events_path.read_text().splitlines()]
        assert lines[0]["type"] == "run-start"
        assert lines[-1]["type"] == "run-end"
        run_ids = {line["run_id"] for line in lines}
        assert len(run_ids) == 1 and None not in run_ids

    def test_exporters_leave_artifacts_byte_identical(self, tmp_path):
        plain_dir = tmp_path / "plain"
        traced_dir = tmp_path / "traced"
        self._run(tmp_path, "--no-cache", "--json", str(plain_dir))
        self._run(
            tmp_path,
            "--no-cache",
            "--json",
            str(traced_dir),
            "--jobs",
            "2",
            "--trace",
            str(tmp_path / "t.json"),
            "--metrics-out",
            str(tmp_path / "m.json"),
            "--events-out",
            str(tmp_path / "e.jsonl"),
        )
        plain_files = sorted(p.name for p in plain_dir.iterdir())
        assert plain_files == sorted(p.name for p in traced_dir.iterdir())
        for name in plain_files:
            assert (plain_dir / name).read_bytes() == (
                traced_dir / name
            ).read_bytes(), name

    def test_profile_works_with_parallel_jobs(self, tmp_path):
        profile_path = tmp_path / "profile.json"
        self._run(
            tmp_path, "--jobs", "2", "--profile-out", str(profile_path)
        )
        report = json.loads(profile_path.read_text())
        assert report["entries"]["match"] > 0
        assert report["stages"]["match"] > 0
        assert report["total_seconds"] > 0
