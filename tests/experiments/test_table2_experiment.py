"""Tests for the Table-2 experiment (library characterization vs. paper)."""

import pytest

from repro.core.families import LogicFamily
from repro.experiments.report import render_table2
from repro.experiments.table2 import TABLE2_FAMILIES, run_table2


@pytest.fixture(scope="module")
def table2():
    return run_table2()


class TestTable2Experiment:
    def test_all_four_families_characterized(self, table2):
        assert set(table2.summaries) == set(TABLE2_FAMILIES)
        assert len(table2.rows[LogicFamily.TG_STATIC]) == 46
        assert len(table2.rows[LogicFamily.CMOS]) == 7

    def test_average_area_within_five_percent_of_paper(self, table2):
        for family in (LogicFamily.TG_STATIC, LogicFamily.TG_PSEUDO, LogicFamily.PASS_PSEUDO):
            ratio = table2.area_ratio_to_paper(family)
            assert 0.95 < ratio < 1.05, family

    def test_average_fo4_within_twenty_percent_of_paper(self, table2):
        for family in TABLE2_FAMILIES:
            measured = table2.summaries[family].average_fo4
            paper = table2.paper_averages[family].fo4_average
            assert measured == pytest.approx(paper, rel=0.20), family

    def test_family_orderings_match_paper(self, table2):
        static = table2.summaries[LogicFamily.TG_STATIC]
        pseudo = table2.summaries[LogicFamily.TG_PSEUDO]
        pass_pseudo = table2.summaries[LogicFamily.PASS_PSEUDO]
        cmos = table2.summaries[LogicFamily.CMOS]
        # Area: pseudo < pass-pseudo < static ~ CMOS.
        assert pseudo.average_area < pass_pseudo.average_area < static.average_area
        assert abs(static.average_area - cmos.average_area) / cmos.average_area < 0.1
        # Delay: static < pseudo < pass-pseudo.
        assert static.average_fo4 < pseudo.average_fo4 < pass_pseudo.average_fo4

    def test_paper_rows_available_for_every_cell(self, table2):
        for family in (LogicFamily.TG_STATIC, LogicFamily.TG_PSEUDO, LogicFamily.PASS_PSEUDO):
            measured_ids = {row.function_id for row in table2.rows[family]}
            assert measured_ids == set(table2.paper_rows[family])

    def test_render_table2_mentions_all_families(self, table2):
        text = render_table2(table2)
        assert "CNTFET TG static" in text
        assert "CMOS static" in text
        per_cell = render_table2(table2, per_cell=True)
        assert "F45" in per_cell
        assert len(per_cell) > len(text)
