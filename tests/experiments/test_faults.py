"""Chaos suite: deterministic fault injection against the experiment engine.

Every scenario arms a seeded :class:`repro.experiments.faults.FaultPlan`
(installed in pool workers through ``REPRO_FAULT_PLAN``), lets the engine
absorb the failure, and asserts the *reproducibility contract*: the results
and artifacts of a faulted run are bit-identical to a fault-free ``jobs=1``
run, and already-finished jobs are never rerun.

Run with ``pytest -m chaos``.  When ``REPRO_CHAOS_REPORT`` names a file,
the failure classification of every engine-level scenario is written there
as JSON (the nightly CI lane uploads it as an artifact).
"""

import json
import multiprocessing
import os
from multiprocessing import resource_tracker, shared_memory
from pathlib import Path

import pytest

from repro.core.families import LogicFamily
from repro.experiments import faults, shm
from repro.experiments.engine import (
    ExperimentEngine,
    MapJob,
    ResultCache,
    table3_payload,
)
from repro.experiments.faults import FaultPlan
from repro.experiments.resilience import CRASH, TIMEOUT, RetryPolicy

pytestmark = pytest.mark.chaos

BENCHMARKS = ("add-16", "t481")
FAMILIES = (LogicFamily.TG_STATIC, LogicFamily.CMOS)

#: Retries resolve fast in tests; correctness must not depend on pacing.
FAST_POLICY = RetryPolicy(backoff_base=0.01, backoff_max=0.05)

_REPORT: list[dict] = []


@pytest.fixture(scope="module", autouse=True)
def _chaos_report():
    """Serialize every scenario's failure classification for CI upload."""
    yield
    target = os.environ.get("REPRO_CHAOS_REPORT")
    if target:
        path = Path(target)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(
                {"suite": "tests/experiments/test_faults.py", "runs": _REPORT},
                indent=2,
                sort_keys=True,
            )
        )


def _classify(test_name: str, engine: ExperimentEngine) -> dict:
    record = {"test": test_name, **engine.robustness_stats()}
    _REPORT.append(record)
    return record


def _jobs4():
    return [
        MapJob(benchmark, family)
        for benchmark in BENCHMARKS
        for family in FAMILIES
    ]


def _job_tag(job: MapJob) -> str:
    return f"{job.benchmark}:{job.family.value}:{job.objective}:{job.flow}:{job.rounds}"


def _result_view(results):
    return {
        job: (r.stats, r.power, r.aig_nodes, r.aig_depth)
        for job, r in results.items()
    }


@pytest.fixture
def arm(tmp_path, monkeypatch):
    """Arm a fault plan (with a spool/ledger dir) for pool workers."""
    spool = tmp_path / "spool"
    spool.mkdir()

    def _arm(**kwargs):
        plan = FaultPlan(once_dir=str(spool), **kwargs)
        monkeypatch.setenv(faults.ENV_VAR, plan.to_json())
        return plan

    _arm.spool = spool
    return _arm


class TestFaultPlanUnit:
    def test_json_round_trip(self, tmp_path):
        plan = FaultPlan(seed=3, kill_job=1, delay_job=2, delay_seconds=0.5,
                         fail_shm_attach=True, once_dir=str(tmp_path))
        assert FaultPlan.from_json(plan.to_json()) == plan
        with pytest.raises(ValueError):
            FaultPlan.from_json("[1, 2]")

    def test_rng_streams_are_deterministic_and_scoped(self):
        plan = FaultPlan(seed=11)
        assert plan.rng("a").random() == FaultPlan(seed=11).rng("a").random()
        assert plan.rng("a").random() != plan.rng("b").random()

    def test_claim_once_admits_exactly_one_claimant(self, tmp_path):
        assert faults.claim_once(tmp_path, "boom")
        assert not faults.claim_once(tmp_path, "boom")
        assert faults.claim_once(tmp_path, "other")

    def test_install_from_env_ignores_malformed_plans(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "{not json")
        faults.install_from_env()
        assert faults.active_plan() is None

    def test_corrupt_file_truncate_halves_the_file(self, tmp_path):
        victim = tmp_path / "entry.json"
        victim.write_bytes(b"x" * 100)
        faults.corrupt_file(victim, mode="truncate")
        assert victim.stat().st_size == 50

    def test_corrupt_file_flip_is_deterministic(self, tmp_path):
        a = tmp_path / "entry.json"
        b = tmp_path / "same"
        b.mkdir()
        b = b / "entry.json"
        payload = json.dumps({"v": list(range(100))}).encode()
        a.write_bytes(payload)
        b.write_bytes(payload)
        faults.corrupt_file(a, seed=5, mode="flip")
        faults.corrupt_file(b, seed=5, mode="flip")
        assert a.read_bytes() == b.read_bytes()
        assert a.read_bytes() != payload
        with pytest.raises(ValueError):
            faults.corrupt_file(a, mode="melt")

    def test_execution_ledger_counts_per_tag(self, tmp_path):
        plan = FaultPlan(once_dir=str(tmp_path))
        faults.install(plan)
        try:
            faults.on_job_start("alpha")
            faults.on_job_start("alpha")
            faults.on_job_start("beta")
        finally:
            faults.install(None)
        assert faults.execution_counts(tmp_path) == {"alpha": 2, "beta": 1}


class TestWorkerKill:
    def test_injected_worker_kill_mid_batch_is_bit_identical(self, arm):
        """The headline contract: kill a worker mid-batch (jobs=4), the run
        completes, finished jobs are not rerun, and every payload matches
        the fault-free jobs=1 run."""
        jobs = _jobs4()
        baseline_engine = ExperimentEngine(jobs=1, use_cache=False)
        baseline = baseline_engine.run_map_jobs(jobs)

        arm(kill_job=0)
        engine = ExperimentEngine(
            jobs=4, use_cache=False, retry_policy=FAST_POLICY
        )
        chaotic = engine.run_map_jobs(jobs)

        assert _result_view(chaotic) == _result_view(baseline)
        assert engine.pool_rebuilds >= 1
        assert engine.degraded_jobs == 0
        assert engine.failures and all(f.kind == CRASH for f in engine.failures)
        record = _classify("worker_kill_jobs4", engine)
        assert record["failure_counts"] == {CRASH: len(engine.failures)}

        # The execution ledger proves completed jobs were never rerun: only
        # jobs charged with a failure may appear more than once.
        counts = faults.execution_counts(arm.spool)
        charged = {_job_tag(jobs[f.index]) for f in engine.failures}
        for job in jobs:
            tag = _job_tag(job)
            if tag in charged:
                assert 1 <= counts.get(tag, 0) <= 1 + len(engine.failures)
            else:
                assert counts.get(tag) == 1

    def test_kill_during_table3_artifact_is_byte_identical(self, arm, tmp_path):
        clean = ExperimentEngine(jobs=1, use_cache=False).run_table3(
            benchmark_names=BENCHMARKS, families=FAMILIES
        )
        arm(kill_job=1)
        engine = ExperimentEngine(jobs=4, use_cache=False, retry_policy=FAST_POLICY)
        chaotic = engine.run_table3(benchmark_names=BENCHMARKS, families=FAMILIES)
        assert json.dumps(table3_payload(chaotic), sort_keys=True) == json.dumps(
            table3_payload(clean), sort_keys=True
        )
        _classify("worker_kill_table3", engine)


class TestTimeoutFault:
    def test_delayed_job_times_out_retries_and_matches_baseline(self, arm):
        jobs = [MapJob("add-16", family) for family in FAMILIES]
        baseline = ExperimentEngine(jobs=1, use_cache=False).run_map_jobs(jobs)

        arm(delay_job=0, delay_seconds=30.0)
        engine = ExperimentEngine(
            jobs=2,
            use_cache=False,
            retry_policy=RetryPolicy(timeout=2.0, backoff_base=0.01),
        )
        chaotic = engine.run_map_jobs(jobs)

        assert _result_view(chaotic) == _result_view(baseline)
        assert TIMEOUT in {f.kind for f in engine.failures}
        assert engine.pool_rebuilds >= 1
        _classify("job_timeout_jobs2", engine)


class TestCacheCorruptionFault:
    @pytest.mark.parametrize("mode", ["truncate", "flip"])
    def test_corrupted_entry_is_quarantined_and_recomputed(self, tmp_path, mode):
        cache_dir = tmp_path / "cache"
        jobs = [MapJob("add-16", family) for family in FAMILIES]
        first_engine = ExperimentEngine(jobs=1, cache_dir=cache_dir)
        first = first_engine.run_map_jobs(jobs)
        victim_key = first_engine.map_job_key(jobs[0])
        victim = first_engine.cache.path_for(victim_key)
        faults.corrupt_file(victim, seed=1, mode=mode)

        redo_engine = ExperimentEngine(jobs=1, cache_dir=cache_dir)
        redone = redo_engine.run_map_jobs(jobs)
        assert _result_view(redone) == _result_view(first)
        assert not redone[jobs[0]].cached  # damage detected, job recomputed
        assert redone[jobs[1]].cached
        assert redo_engine.cache.stats.corrupt == 1
        assert len(list(redo_engine.cache.quarantine_dir().iterdir())) == 1

        fresh = ExperimentEngine(jobs=1, cache_dir=cache_dir).run_map_jobs(jobs)
        assert all(result.cached for result in fresh.values())
        _REPORT.append(
            {"test": f"cache_corruption_{mode}", **redo_engine.robustness_stats()}
        )


class TestSharedMemoryFaults:
    def test_injected_attach_failure_raises_for_exactly_one_attempt(self, tmp_path):
        from repro.bench.registry import benchmark_by_name
        from repro.experiments.engine import aig_fingerprint
        from repro.flow import run_flow
        from repro.synthesis.aig_array import aig_arrays
        from repro.synthesis.cuts import cut_set_for

        aig = run_flow("resyn2rs", benchmark_by_name("add-16").build()).aig
        arrays = aig_arrays(aig)
        cut_set = cut_set_for(aig)
        key = f"{aig_fingerprint(aig)}:{cut_set.max_inputs}:{cut_set.cut_limit}"
        try:
            handle = shm.publish_subject(key, aig, arrays, cut_set)
        except OSError:
            pytest.skip("no usable shared memory on this platform")
        faults.install(FaultPlan(fail_shm_attach=True, once_dir=str(tmp_path)))
        try:
            shm._LOCAL.pop(key)  # force the attach path, as in a worker
            with pytest.raises(OSError, match="injected"):
                shm.resolve_subject(handle)
            # The latch admits one failure per subject; the retry attaches.
            rebuilt = shm.resolve_subject(handle)
            assert rebuilt.pi_names == aig.pi_names
        finally:
            faults.install(None)
            shm.drop_attachments()
            shm.release_subjects()

    def test_engine_survives_attach_failures_bit_identically(self, arm):
        jobs = _jobs4()
        baseline = ExperimentEngine(jobs=1, use_cache=False).run_map_jobs(jobs)
        arm(fail_shm_attach=True)
        engine = ExperimentEngine(jobs=2, use_cache=False, retry_policy=FAST_POLICY)
        chaotic = engine.run_map_jobs(jobs)
        assert _result_view(chaotic) == _result_view(baseline)
        # Attach failures degrade to recompute-from-spec, never to retries.
        assert [f for f in engine.failures if f.kind == CRASH] == []
        _classify("shm_attach_failure_jobs2", engine)


class TestSegmentLifecycle:
    FOREIGN = "reprofeedface0001"  # matches the name pattern, foreign nonce

    def test_stale_segment_of_crashed_publisher_is_reaped(self):
        if not shm._SHM_DIR.is_dir():
            pytest.skip("no /dev/shm on this platform")
        assert not self.FOREIGN.startswith(f"repro{shm._RUN_NONCE}")
        process = multiprocessing.get_context("fork").Process(
            target=_publish_and_crash, args=(self.FOREIGN,)
        )
        process.start()
        process.join(timeout=30)
        assert process.exitcode == 1  # died without running cleanup
        assert (shm._SHM_DIR / self.FOREIGN).exists()  # the leak

        reaped = shm.reap_stale_segments(max_age=-1.0)
        assert reaped >= 1
        assert not (shm._SHM_DIR / self.FOREIGN).exists()

    def test_reaping_never_touches_the_current_run(self):
        if not shm._SHM_DIR.is_dir():
            pytest.skip("no /dev/shm on this platform")
        segment = shm._create_segment(64)
        try:
            shm.reap_stale_segments(max_age=-1.0)
            assert (shm._SHM_DIR / segment.name).exists()
        finally:
            segment.close()
            segment.unlink()

    def test_fresh_engine_reaps_at_startup(self, tmp_path):
        if not shm._SHM_DIR.is_dir():
            pytest.skip("no /dev/shm on this platform")
        process = multiprocessing.get_context("fork").Process(
            target=_publish_and_crash, args=(self.FOREIGN,)
        )
        process.start()
        process.join(timeout=30)
        assert (shm._SHM_DIR / self.FOREIGN).exists()
        reap_age = os.environ.get("REPRO_SHM_REAP_AGE")
        os.environ["REPRO_SHM_REAP_AGE"] = "-1"
        try:
            ExperimentEngine(jobs=1, cache_dir=tmp_path)
        finally:
            if reap_age is None:
                del os.environ["REPRO_SHM_REAP_AGE"]
            else:  # pragma: no cover - nested override
                os.environ["REPRO_SHM_REAP_AGE"] = reap_age
        assert not (shm._SHM_DIR / self.FOREIGN).exists()


class TestConcurrentRunners:
    def test_two_runners_sharing_a_cache_produce_no_corruption(self, tmp_path):
        """Satellite acceptance: concurrent runners over one cache directory
        leave zero corrupt or duplicate entries and agree bit-for-bit."""
        cache_dir = tmp_path / "cache"
        context = multiprocessing.get_context("fork")
        queue = context.Queue()
        runners = [
            context.Process(target=_runner_process, args=(cache_dir, rank, queue))
            for rank in range(2)
        ]
        for runner in runners:
            runner.start()
        payloads = [queue.get(timeout=300) for _ in runners]
        for runner in runners:
            runner.join(timeout=30)
            assert runner.exitcode == 0

        assert payloads[0]["results"] == payloads[1]["results"]
        assert all(p["corrupt"] == 0 for p in payloads)

        entries = sorted(cache_dir.glob("??/??/*.json"))
        assert len(entries) == len(_jobs4())  # no duplicate entries per key
        assert not list(cache_dir.rglob("*.tmp"))  # no staging leftovers
        assert not ResultCache(cache_dir).quarantine_dir().exists()
        validator = ResultCache(cache_dir)
        for entry in entries:
            assert validator.get(entry.stem) is not None
        assert validator.stats.corrupt == 0
        assert validator.stats.hits == len(entries)


def _publish_and_crash(name: str) -> None:
    """Child-process body: leak a foreign-nonce segment like a crashed run."""
    try:
        segment = shared_memory.SharedMemory(create=True, name=name, size=64)
    except FileExistsError:
        segment = shared_memory.SharedMemory(name=name)
    try:  # the parent's reaper owns the cleanup; silence this process's tracker
        resource_tracker.unregister(segment._name, "shared_memory")
    except Exception:
        pass
    os._exit(1)  # skips atexit: exactly how a crashed publisher leaks


def _runner_process(cache_dir, rank: int, queue) -> None:
    """Child-process body: one cache-sharing runner (stress scenario)."""
    engine = ExperimentEngine(jobs=1, cache_dir=cache_dir)
    results = engine.run_map_jobs(_jobs4())
    queue.put(
        {
            "rank": rank,
            "corrupt": engine.cache.stats.corrupt,
            "results": sorted(
                (job.benchmark, job.family.value, repr(result.stats))
                for job, result in results.items()
            ),
        }
    )
