"""Pareto experiment lane: fronts, artifacts, parallel determinism, CLI."""

import json

import pytest

from repro.core.families import LogicFamily
from repro.experiments.engine import ExperimentEngine, MapJob
from repro.experiments.pareto import (
    ParetoPoint,
    pareto_front,
    pareto_payload,
    render_pareto,
    run_pareto,
)
from repro.experiments.runner import main

SUBSET = ("add-16",)
FAMILIES = (LogicFamily.TG_STATIC, LogicFamily.TG_PSEUDO, LogicFamily.CMOS)


def _point(family, objective, area, delay, power):
    return ParetoPoint(
        family=family,
        objective=objective,
        gates=1,
        area=area,
        levels=1,
        normalized_delay=delay,
        absolute_delay_ps=delay,
        dynamic_power=power,
        static_power=0.0,
        total_power=power,
    )


class TestFrontExtraction:
    def test_dominated_points_are_dropped(self):
        a = _point(LogicFamily.TG_STATIC, "delay", 1.0, 1.0, 1.0)
        b = _point(LogicFamily.CMOS, "delay", 2.0, 2.0, 2.0)  # dominated by a
        c = _point(LogicFamily.TG_PSEUDO, "area", 0.5, 3.0, 1.5)  # tradeoff
        front = pareto_front((a, b, c))
        assert front == (a, c)
        assert a.dominates(b) and not a.dominates(c) and not c.dominates(a)

    def test_equal_points_survive_together(self):
        a = _point(LogicFamily.TG_STATIC, "delay", 1.0, 1.0, 1.0)
        b = _point(LogicFamily.TG_STATIC, "area", 1.0, 1.0, 1.0)
        assert pareto_front((a, b)) == (a, b)


class TestRunPareto:
    @pytest.fixture(scope="class")
    def result(self):
        return run_pareto(
            benchmark_names=SUBSET,
            families=FAMILIES,
            engine=ExperimentEngine(jobs=1, use_cache=False),
        )

    def test_one_point_per_family_objective_pair(self, result):
        row = result.row("add-16")
        assert len(row.points) == len(FAMILIES) * 3
        seen = {(p.family, p.objective) for p in row.points}
        assert len(seen) == len(row.points)

    def test_front_is_nonempty_and_non_dominated(self, result):
        row = result.row("add-16")
        assert row.front
        for point in row.front:
            assert not any(other.dominates(point) for other in row.points)
        for point in row.points:
            if point not in row.front:
                assert any(other.dominates(point) for other in row.points)

    def test_pseudo_static_and_static_families_zero(self, result):
        row = result.row("add-16")
        for point in row.points:
            if point.family is LogicFamily.TG_PSEUDO:
                assert point.static_power > 0
            elif point.family in (LogicFamily.TG_STATIC, LogicFamily.CMOS):
                assert point.static_power == 0.0

    def test_payload_and_rendering(self, result):
        payload = pareto_payload(result)
        assert json.loads(json.dumps(payload)) == payload
        assert payload["rows"][0]["name"] == "add-16"
        assert payload["objectives"] == ["delay", "area", "power"]
        rendered = render_pareto(result)
        assert "add-16" in rendered and "on the front" in rendered

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(KeyError):
            run_pareto(benchmark_names=("nope",))


class TestRecoveryVariants:
    """With rounds > 0 the sweep gains recovered points alongside round 0."""

    @pytest.fixture(scope="class")
    def recovered(self):
        return run_pareto(
            benchmark_names=SUBSET,
            families=(LogicFamily.TG_STATIC, LogicFamily.CMOS),
            objectives=("delay", "area"),
            engine=ExperimentEngine(jobs=1, use_cache=False),
            rounds=2,
        )

    def test_round_variants_double_the_point_count(self, recovered):
        row = recovered.row("add-16")
        assert len(row.points) == 2 * 2 * 2  # families x objectives x rounds
        assert {p.rounds for p in row.points} == {0, 2}
        seen = {(p.family, p.objective, p.rounds) for p in row.points}
        assert len(seen) == len(row.points)

    def test_recovered_points_never_dominated_by_their_round0(self, recovered):
        row = recovered.row("add-16")
        by_key = {(p.family, p.objective, p.rounds): p for p in row.points}
        for (family, objective, rounds), point in by_key.items():
            if rounds == 0:
                continue
            base = by_key[(family, objective, 0)]
            # Recovery never worsens delay and never worsens area.
            assert point.absolute_delay_ps <= base.absolute_delay_ps + 1e-9
            assert point.area <= base.area + 1e-9

    def test_payload_records_recovery_metadata(self, recovered):
        payload = pareto_payload(recovered)
        assert payload["map_rounds"] == 2
        assert payload["map_recovery"] == "auto"
        tagged = [
            p
            for row in payload["rows"]
            for p in row["points"]
            if p.get("rounds")
        ]
        assert tagged and all(p["rounds"] == 2 for p in tagged)

    def test_round0_payload_has_no_recovery_keys(self):
        result = run_pareto(
            benchmark_names=SUBSET,
            families=(LogicFamily.TG_STATIC,),
            objectives=("delay",),
            engine=ExperimentEngine(jobs=1, use_cache=False),
        )
        payload = pareto_payload(result)
        assert "map_rounds" not in payload and "map_recovery" not in payload
        assert all(
            "rounds" not in p for row in payload["rows"] for p in row["points"]
        )


class TestDeterminism:
    def test_jobs4_front_bit_identical_to_jobs1(self):
        kwargs = dict(benchmark_names=SUBSET, families=FAMILIES)
        sequential = run_pareto(
            engine=ExperimentEngine(jobs=1, use_cache=False), **kwargs
        )
        parallel = run_pareto(
            engine=ExperimentEngine(jobs=4, use_cache=False), **kwargs
        )
        assert json.dumps(pareto_payload(sequential), sort_keys=True) == json.dumps(
            pareto_payload(parallel), sort_keys=True
        )

    def test_power_axis_cached_and_replayed(self, tmp_path):
        jobs = [MapJob("add-16", LogicFamily.TG_PSEUDO, objective="power")]
        first = ExperimentEngine(cache_dir=tmp_path).run_map_jobs(jobs)
        again = ExperimentEngine(cache_dir=tmp_path).run_map_jobs(jobs)
        (job,) = jobs
        assert not first[job].cached and again[job].cached
        assert first[job].power == again[job].power
        assert first[job].power.static > 0

    def test_cache_keys_distinct_per_objective_and_power_params(self, tmp_path):
        engine = ExperimentEngine(cache_dir=tmp_path)
        keys = {
            engine.map_job_key(MapJob("add-16", LogicFamily.TG_STATIC)),
            engine.map_job_key(
                MapJob("add-16", LogicFamily.TG_STATIC, objective="area")
            ),
            engine.map_job_key(
                MapJob("add-16", LogicFamily.TG_STATIC, objective="power")
            ),
            engine.map_job_key(
                MapJob("add-16", LogicFamily.TG_STATIC, power_vectors=32)
            ),
            engine.map_job_key(
                MapJob("add-16", LogicFamily.TG_STATIC, power_seed=1)
            ),
            engine.map_job_key(MapJob("add-16", LogicFamily.TG_STATIC, rounds=2)),
            engine.map_job_key(
                MapJob("add-16", LogicFamily.TG_STATIC, rounds=2, recovery="power")
            ),
        }
        assert len(keys) == 7


class TestRunnerCli:
    def test_objective_flag_recorded_in_artifact(self, capsys, tmp_path):
        artifacts = tmp_path / "artifacts"
        exit_code = main(
            ["add-16", "--no-cache", "--objective", "power",
             "--json", str(artifacts)]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "[flow: resyn2rs; objective: power]" in captured
        payload = json.loads((artifacts / "table3.json").read_text())
        assert payload["objective"] == "power"
        row = payload["rows"][0]
        assert row["power"][LogicFamily.TG_PSEUDO.value]["static"] > 0
        assert row["power"][LogicFamily.CMOS.value]["static"] == 0.0

    def test_pareto_flag_writes_artifact(self, capsys, tmp_path):
        artifacts = tmp_path / "artifacts"
        exit_code = main(
            ["add-16", "--no-cache", "--pareto", "--json", str(artifacts)]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "Pareto fronts" in captured
        payload = json.loads((artifacts / "pareto.json").read_text())
        assert [row["name"] for row in payload["rows"]] == ["add-16"]
        assert payload["rows"][0]["front"]
        families = {p["family"] for p in payload["rows"][0]["points"]}
        assert families == {family.value for family in LogicFamily}

    def test_power_vectors_flag_changes_monte_carlo_estimate(self, capsys, tmp_path):
        # C2670 is wide enough to take the Monte-Carlo path, so a different
        # vector budget must change the recorded power provenance.
        artifacts = tmp_path / "artifacts"
        assert main(
            ["C2670", "--no-cache", "--power-vectors", "16",
             "--json", str(artifacts)]
        ) == 0
        capsys.readouterr()
        payload = json.loads((artifacts / "table3.json").read_text())
        power = payload["rows"][0]["power"][LogicFamily.TG_STATIC.value]
        assert power["method"] == "monte-carlo"
        assert power["patterns"] == 16 * 64
