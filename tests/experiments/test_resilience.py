"""Unit tests for the fault-tolerant batch executor.

The worker functions live at module top level so ProcessPoolExecutor can
pickle them; crash-prone workers only misbehave inside pool workers (they
check the parent pid or a cross-process once-latch), so the deterministic
in-process degrade path stays safe to run in the test process.
"""

import os
import time
from concurrent.futures import BrokenExecutor

import pytest

from repro.experiments import resilience
from repro.experiments.faults import claim_once
from repro.experiments.resilience import (
    CRASH,
    FLOW_ERROR,
    TIMEOUT,
    BatchOutcome,
    JobFailure,
    RetryPolicy,
    backoff_delay,
    classify_exception,
    run_resilient,
)

FAST = RetryPolicy(backoff_base=0.01, backoff_max=0.05)


def _square(value):
    return value * value


def _crash_first_job_once(payload):
    value, spool = payload
    if value == 0 and claim_once(spool, "crash"):
        os._exit(13)
    return value * 10


def _crash_in_pool_workers(payload):
    value, parent_pid = payload
    if os.getpid() != parent_pid:
        os._exit(13)
    return value - 1


def _sleep_first_job_once(payload):
    value, spool, seconds = payload
    if seconds and claim_once(spool, f"sleep-{value}"):
        time.sleep(seconds)
    return value + 100


def _record_then_raise(payload):
    value, spool = payload
    claim_once(spool, f"ran-{value}-{os.getpid()}-{time.monotonic_ns():x}")
    raise ValueError(f"bad payload {value}")


class TestRetryPolicy:
    def test_from_env_defaults(self):
        policy = RetryPolicy.from_env({})
        assert policy == RetryPolicy()
        assert policy.timeout is None and policy.max_attempts == 3

    def test_from_env_parses_timeout_and_retries(self):
        policy = RetryPolicy.from_env(
            {"REPRO_JOB_TIMEOUT": "1.5", "REPRO_JOB_RETRIES": "4"}
        )
        assert policy.timeout == 1.5
        assert policy.max_attempts == 5

    def test_from_env_zero_timeout_means_unbounded(self):
        assert RetryPolicy.from_env({"REPRO_JOB_TIMEOUT": "0"}).timeout is None

    def test_backoff_is_deterministic_and_bounded(self):
        policy = RetryPolicy(seed=7)
        for index in range(3):
            for attempt in range(1, 5):
                first = backoff_delay(policy, index, attempt)
                assert first == backoff_delay(policy, index, attempt)
                assert 0.0 <= first <= policy.backoff_max * (1 + policy.jitter)
        # Different jobs de-synchronize their retry schedules.
        assert backoff_delay(policy, 0, 1) != backoff_delay(policy, 1, 1)

    def test_backoff_zero_base_disables_delay(self):
        assert backoff_delay(RetryPolicy(backoff_base=0.0), 0, 1) == 0.0

    def test_classification(self):
        assert classify_exception(BrokenExecutor("gone")) == CRASH
        assert classify_exception(ValueError("boom")) == FLOW_ERROR

    def test_failure_counts(self):
        outcome = BatchOutcome(
            results=[],
            failures=[
                JobFailure(0, CRASH, 1, "x", "retry"),
                JobFailure(1, CRASH, 1, "x", "retry"),
                JobFailure(0, TIMEOUT, 2, "x", "in-process"),
            ],
        )
        assert outcome.failure_counts() == {CRASH: 2, TIMEOUT: 1}


class TestRunResilient:
    def test_clean_batch_ordered_results_and_callbacks(self):
        seen = {}
        outcome = run_resilient(
            _square,
            [3, 1, 4, 1, 5],
            jobs=2,
            policy=FAST,
            on_result=lambda index, payload: seen.setdefault(index, payload),
        )
        assert outcome.results == [9, 1, 16, 1, 25]
        assert seen == {0: 9, 1: 1, 2: 16, 3: 1, 4: 25}
        assert outcome.failures == [] and outcome.rebuilds == 0
        assert outcome.pool_used

    def test_worker_crash_is_retried_to_identical_results(self, tmp_path):
        payloads = [(value, str(tmp_path)) for value in range(4)]
        outcome = run_resilient(
            _crash_first_job_once, payloads, jobs=2, policy=FAST
        )
        assert outcome.results == [0, 10, 20, 30]
        assert outcome.rebuilds >= 1
        assert outcome.degraded == 0
        kinds = {failure.kind for failure in outcome.failures}
        assert kinds == {CRASH}
        assert all(f.resolution == "retry" for f in outcome.failures)

    def test_exhausted_retries_degrade_to_in_process(self):
        payloads = [(value, os.getpid()) for value in (5, 9)]
        outcome = run_resilient(
            _crash_in_pool_workers,
            payloads,
            jobs=2,
            policy=RetryPolicy(max_attempts=2, backoff_base=0.01),
        )
        # Every pool attempt dies; the deterministic parent path finishes.
        assert outcome.results == [4, 8]
        assert outcome.degraded == 2
        assert [f.resolution for f in outcome.failures].count("in-process") == 2
        assert all(f.kind == CRASH for f in outcome.failures)

    def test_timeout_charges_job_and_retry_succeeds(self, tmp_path):
        payloads = [
            (0, str(tmp_path), 30.0),  # would hang far past the budget
            (1, str(tmp_path), 0.0),
        ]
        policy = RetryPolicy(timeout=0.5, backoff_base=0.01)
        start = time.monotonic()
        outcome = run_resilient(_sleep_first_job_once, payloads, jobs=2, policy=policy)
        elapsed = time.monotonic() - start
        assert outcome.results == [100, 101]
        assert TIMEOUT in {failure.kind for failure in outcome.failures}
        assert outcome.rebuilds >= 1
        assert elapsed < 20.0  # the stuck worker was reclaimed, not awaited

    def test_flow_errors_propagate_without_retry(self, tmp_path):
        with pytest.raises(ValueError, match="bad payload"):
            run_resilient(
                _record_then_raise,
                [(0, str(tmp_path)), (1, str(tmp_path))],
                jobs=2,
                policy=FAST,
            )
        # Each payload executed at most once: deterministic bugs never retry.
        runs = [path.name for path in tmp_path.glob("ran-*.fired")]
        for value in (0, 1):
            assert sum(1 for name in runs if name.startswith(f"ran-{value}-")) <= 1

    def test_pool_creation_failure_runs_whole_batch_in_process(self, monkeypatch):
        def refuse(*args, **kwargs):
            raise OSError("no processes for you")

        monkeypatch.setattr(resilience, "ProcessPoolExecutor", refuse)
        seen = []
        outcome = run_resilient(
            _square,
            [2, 3],
            jobs=2,
            policy=FAST,
            on_result=lambda index, payload: seen.append((index, payload)),
        )
        assert outcome.results == [4, 9]
        assert not outcome.pool_used
        assert seen == [(0, 4), (1, 9)]

    def test_single_job_batches_still_work(self):
        outcome = run_resilient(_square, [6], jobs=4, policy=FAST)
        assert outcome.results == [36]
