"""Benchmark: NPN-canonical matching vs. the exhaustive reference matcher.

Times the two matcher constructions and a full K=6 technology mapping
through each, asserting the wins the canonical index exists for: an index
at least 10x smaller, a faster build, and bit-identical mapping statistics.
A flow benchmark times the named synthesis flows through the pass manager
on a mid-size benchmark.  Results are exported as pytest-benchmark JSON by
the nightly CI job (see ``.github/workflows/ci.yml``).
"""

import time

import pytest

from repro.bench.registry import benchmark_by_name
from repro.core.families import LogicFamily
from repro.core.library import build_library
from repro.flow import available_flows, run_flow
from repro.synthesis.mapper import technology_map
from repro.synthesis.matcher import ExhaustiveLibraryMatcher, LibraryMatcher

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def static_library():
    return build_library(LogicFamily.TG_STATIC)


@pytest.fixture(scope="module")
def subject_aig():
    return run_flow("resyn2rs", benchmark_by_name("C1908").build()).aig


def test_bench_matcher_build_npn_vs_exhaustive(benchmark, static_library):
    """Canonical index: >=10x fewer entries and a faster build."""
    start = time.perf_counter()
    exhaustive = ExhaustiveLibraryMatcher(static_library)
    exhaustive_seconds = time.perf_counter() - start

    npn = benchmark(LibraryMatcher, static_library)
    npn_seconds = benchmark.stats.stats.mean

    assert len(npn) * 10 <= len(exhaustive), (
        f"canonical index ({len(npn)} entries) not >=10x smaller than the "
        f"exhaustive tables ({len(exhaustive)} entries)"
    )
    assert npn_seconds < exhaustive_seconds, (
        f"canonical build ({npn_seconds:.3f}s) not faster than exhaustive "
        f"({exhaustive_seconds:.3f}s)"
    )


def test_bench_k6_mapping_npn_vs_exhaustive(benchmark, static_library, subject_aig):
    """Full K=6 mapping through both matchers must agree bit for bit."""
    exhaustive = ExhaustiveLibraryMatcher(static_library)
    start = time.perf_counter()
    reference = technology_map(
        subject_aig, static_library, matcher=exhaustive, max_inputs=6
    )
    exhaustive_seconds = time.perf_counter() - start

    npn = LibraryMatcher(static_library)
    mapped = benchmark(
        technology_map, subject_aig, static_library, npn, max_inputs=6
    )
    npn_seconds = benchmark.stats.stats.mean

    assert mapped.statistics() == reference.statistics()
    assert [gate.cell_name for gate in mapped.gates] == [
        gate.cell_name for gate in reference.gates
    ]
    # The canonical path canonicalizes each distinct cut function once
    # (memoized); it must stay in the same ballpark as the raw lookup.
    assert npn_seconds < 5 * exhaustive_seconds, (
        f"canonical mapping ({npn_seconds:.3f}s) more than 5x slower than "
        f"exhaustive lookup ({exhaustive_seconds:.3f}s)"
    )


@pytest.mark.parametrize("flow", sorted(available_flows()))
def test_bench_named_flows(benchmark, flow):
    """Per-flow optimization time on a mid-size benchmark (pass telemetry on)."""
    aig = benchmark_by_name("C1355").build()
    result = benchmark(run_flow, flow, aig)
    assert result.aig.num_ands > 0
    if flow != "none":
        assert result.passes


@pytest.mark.parametrize("pass_name", ("balance", "rewrite"))
def test_bench_single_pass(benchmark, pass_name):
    """Balance/rewrite split of the ``resyn2rs`` lane (vectorized fast paths).

    ``rewrite`` is timed on the balanced subject -- its position in the
    flow -- with the per-AIG cut-set memo dropped each round so every round
    pays for cut enumeration like a cold flow does.
    """
    from repro.flow.passes import get_pass

    aig = benchmark_by_name("C1355").build()
    if pass_name == "rewrite":
        aig = run_flow("quick", aig).aig

    run = get_pass(pass_name).run

    def setup():
        aig.__dict__.pop("_cut_sets", None)
        return (aig,), {}

    result = benchmark.pedantic(run, setup=setup, rounds=20)
    assert result.num_ands > 0
