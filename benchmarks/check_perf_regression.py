"""Compare a pytest-benchmark JSON export against a committed baseline.

Used by the nightly CI job to catch mapping-time regressions: the flow
benchmark export (``flow_bench.json``) is compared benchmark-by-benchmark
against ``benchmarks/baselines/flow_bench_baseline.json`` and the check fails
when any mean time regresses by more than ``--max-regression`` (default 30%,
generous because CI machines vary).  Benchmarks present on only one side are
reported but never fail the check, so adding or renaming benchmarks does not
require touching the baseline in the same change.

Refresh the baseline from a trusted run with::

    python benchmarks/check_perf_regression.py new_run.json \
        benchmarks/baselines/flow_bench_baseline.json --write-baseline

The override knob for intentional slowdowns is documented in
``tests/README.md`` (the ``[skip-perf-guard]`` commit-message label).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def load_means(path: Path) -> dict[str, float]:
    """Benchmark-name -> mean seconds, from either export or baseline format."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if isinstance(payload, dict) and "benchmarks" in payload:
        return {
            entry["fullname"]: float(entry["stats"]["mean"])
            for entry in payload["benchmarks"]
        }
    if isinstance(payload, dict):
        return {name: float(mean) for name, mean in payload.items()}
    raise ValueError(f"{path} is neither a pytest-benchmark export nor a baseline")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", type=Path, help="pytest-benchmark JSON export")
    parser.add_argument("baseline", type=Path, help="committed baseline JSON")
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.30,
        metavar="FRACTION",
        help="allowed slowdown per benchmark (default: 0.30 = 30%%)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="rewrite the baseline from the current export instead of checking",
    )
    args = parser.parse_args(argv)

    current = load_means(args.current)
    if args.write_baseline:
        args.baseline.parent.mkdir(parents=True, exist_ok=True)
        with open(args.baseline, "w", encoding="utf-8") as handle:
            json.dump(current, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote baseline ({len(current)} benchmarks) to {args.baseline}")
        return 0

    baseline = load_means(args.baseline)
    regressions: list[str] = []
    for name in sorted(current):
        mean = current[name]
        reference = baseline.get(name)
        if reference is None:
            print(f"[new]      {name}: {mean * 1000:.1f} ms (no baseline entry)")
            continue
        ratio = mean / reference if reference > 0 else float("inf")
        marker = "ok" if ratio <= 1.0 + args.max_regression else "REGRESSION"
        print(
            f"[{marker:>10}] {name}: {mean * 1000:.1f} ms "
            f"vs baseline {reference * 1000:.1f} ms ({ratio:.2f}x)"
        )
        if marker == "REGRESSION":
            regressions.append(name)
    for name in sorted(set(baseline) - set(current)):
        print(f"[gone]     {name}: in baseline but not in the current run")

    if regressions:
        print(
            f"\n{len(regressions)} benchmark(s) regressed more than "
            f"{args.max_regression:.0%}: {', '.join(regressions)}\n"
            "If the slowdown is intentional, refresh the baseline with "
            "--write-baseline (see tests/README.md for the CI override label)."
        )
        return 1
    print(f"\nall {len(current)} benchmarks within {args.max_regression:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
