"""Compare a pytest-benchmark JSON export against a committed baseline.

Used by the nightly CI job to catch mapping-time regressions: the flow
benchmark export (``flow_bench.json``) is compared benchmark-by-benchmark
against ``benchmarks/baselines/flow_bench_baseline.json`` and the check fails
when any **median** time regresses by more than ``--max-regression`` (default
30%, generous because CI machines vary).  Medians, not means: nightly runs
have shown >2x outlier spread on shared runners (a single descheduled round
drags the mean far above the typical run), and the median of N rounds is
stable against exactly that.  Benchmarks present on only one side are
reported but never fail the check, so adding or renaming benchmarks does not
require touching the baseline in the same change.

Baseline entries record the run variance alongside the decision statistic::

    {"<benchmark fullname>": {"median": s, "stddev": s, "rounds": n}, ...}

Legacy flat baselines (``{name: seconds}``) are still accepted (the float is
read as the median with unknown variance).  Refresh the baseline from a
trusted run with::

    python benchmarks/check_perf_regression.py new_run.json \
        benchmarks/baselines/flow_bench_baseline.json --write-baseline

The override knob for intentional slowdowns is documented in
``tests/README.md`` (the ``[skip-perf-guard]`` commit-message label).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def load_stats(path: Path) -> dict[str, dict]:
    """Benchmark-name -> ``{"median", "stddev", "rounds"}`` from either format.

    Accepts a pytest-benchmark export, the structured baseline format, or a
    legacy flat ``{name: mean_seconds}`` baseline (median := the stored
    float, variance unknown).
    """
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if isinstance(payload, dict) and "benchmarks" in payload:
        return {
            entry["fullname"]: {
                "median": float(entry["stats"]["median"]),
                "stddev": float(entry["stats"]["stddev"]),
                "rounds": int(entry["stats"]["rounds"]),
            }
            for entry in payload["benchmarks"]
        }
    if isinstance(payload, dict):
        stats: dict[str, dict] = {}
        for name, entry in payload.items():
            if isinstance(entry, dict):
                stats[name] = {
                    "median": float(entry["median"]),
                    "stddev": float(entry.get("stddev", 0.0)),
                    "rounds": int(entry.get("rounds", 0)),
                }
            else:
                stats[name] = {"median": float(entry), "stddev": 0.0, "rounds": 0}
        return stats
    raise ValueError(f"{path} is neither a pytest-benchmark export nor a baseline")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", type=Path, help="pytest-benchmark JSON export")
    parser.add_argument("baseline", type=Path, help="committed baseline JSON")
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.30,
        metavar="FRACTION",
        help="allowed median slowdown per benchmark (default: 0.30 = 30%%)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="rewrite the baseline from the current export instead of checking",
    )
    args = parser.parse_args(argv)

    current = load_stats(args.current)
    if args.write_baseline:
        args.baseline.parent.mkdir(parents=True, exist_ok=True)
        with open(args.baseline, "w", encoding="utf-8") as handle:
            json.dump(current, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote baseline ({len(current)} benchmarks) to {args.baseline}")
        return 0

    baseline = load_stats(args.baseline)
    regressions: list[str] = []
    for name in sorted(current):
        stats = current[name]
        median = stats["median"]
        spread = (
            f", stddev {stats['stddev'] * 1000:.1f} ms over {stats['rounds']} rounds"
            if stats["rounds"]
            else ""
        )
        reference = baseline.get(name)
        if reference is None:
            print(f"[new]      {name}: median {median * 1000:.1f} ms{spread}")
            continue
        ref_median = reference["median"]
        ratio = median / ref_median if ref_median > 0 else float("inf")
        marker = "ok" if ratio <= 1.0 + args.max_regression else "REGRESSION"
        print(
            f"[{marker:>10}] {name}: median {median * 1000:.1f} ms "
            f"vs baseline {ref_median * 1000:.1f} ms ({ratio:.2f}x{spread})"
        )
        if marker == "REGRESSION":
            regressions.append(name)
    for name in sorted(set(baseline) - set(current)):
        print(f"[gone]     {name}: in baseline but not in the current run")

    if regressions:
        print(
            f"\n{len(regressions)} benchmark(s) regressed more than "
            f"{args.max_regression:.0%}: {', '.join(regressions)}\n"
            "If the slowdown is intentional, refresh the baseline with "
            "--write-baseline (see tests/README.md for the CI override label)."
        )
        return 1
    print(f"\nall {len(current)} benchmarks within {args.max_regression:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
