"""Mapping-core lane: multi-round recovery QoR and runtime.

Times the cost-model mapping engine with and without required-time recovery
(``rounds=0`` vs ``rounds=2``) on representative Table-3 circuits, so the
nightly ``mapping_bench.json`` artifact tracks both the single-pass DP cost
and the full recovery driver (candidate re-pricing, per-round covering and
re-timing) as the engine evolves.  Every recovered run also asserts the
driver's QoR contract -- area no worse than round 0 at unchanged worst
delay -- so a regression in recovery quality fails the lane even if the
timing stays flat.
"""

import pytest

from repro.bench.registry import benchmark_by_name
from repro.core.families import LogicFamily
from repro.flow import run_flow
from repro.synthesis.mapper import map_rounds

pytestmark = pytest.mark.slow

#: Circuit-class spread: XOR-rich ECC, wide ALU, symmetric logic, multiplier.
MAPPING_CASES = ("C1908", "dalu", "t481", "C6288")


@pytest.fixture(scope="module")
def subject_aigs():
    return {
        name: run_flow("resyn2rs", benchmark_by_name(name).build()).aig
        for name in MAPPING_CASES
    }


def _cold_map_rounds(aig, library, matcher, rounds):
    """Map with the per-AIG cut-set memo dropped, so every benchmark round
    pays for cut enumeration as well as the DP and (for rounds > 0) the
    recovery driver."""
    aig.__dict__.pop("_cut_sets", None)
    return map_rounds(
        aig, library, matcher=matcher, objective="delay", rounds=rounds
    )


@pytest.mark.parametrize("name", sorted(MAPPING_CASES))
@pytest.mark.parametrize("rounds", [0, 2])
def test_bench_mapping_rounds(
    benchmark, libraries, matchers, subject_aigs, name, rounds
):
    """Time one delay-objective mapping at the given recovery depth."""
    aig = subject_aigs[name]
    family = LogicFamily.TG_STATIC
    result = benchmark(
        _cold_map_rounds, aig, libraries[family], matchers[family], rounds
    )
    round0, final = result.rounds[0], result.final
    assert final.gate_count > 0 and final.levels > 0
    if rounds:
        # The recovery contract: never slower than round 0, never larger.
        assert final.normalized_delay <= round0.normalized_delay + 1e-9
        assert final.area <= round0.area + 1e-9


@pytest.mark.parametrize("name", sorted(MAPPING_CASES))
def test_bench_incremental_recovery(benchmark, libraries, matchers, subject_aigs, name):
    """Time the warm rounds=2 recovery driver on the incremental DP path.

    Unlike :func:`test_bench_mapping_rounds` this keeps the cut-set memo, so
    the measurement isolates what recovery re-solves actually cost once the
    candidate tables exist: the incremental diff should re-choose only the
    nodes whose required times or references moved between retries.  The
    oracle assertion pins the incremental result to the full re-solve.
    """
    aig = subject_aigs[name]
    family = LogicFamily.TG_STATIC
    library, matcher = libraries[family], matchers[family]
    result = benchmark(
        map_rounds,
        aig,
        library,
        matcher=matcher,
        objective="delay",
        rounds=2,
        incremental=True,
    )
    full = map_rounds(
        aig, library, matcher=matcher, objective="delay", rounds=2, incremental=False
    )
    assert [r.area for r in result.rounds] == [r.area for r in full.rounds]
    assert result.final.normalized_delay == full.final.normalized_delay
    assert result.final.area == full.final.area


def test_recovery_qor_across_families(libraries, matchers, subject_aigs):
    """Aggregate QoR guard: recovery must keep finding real area at equal
    delay somewhere in the lane (the headline claim of the recovery rounds),
    not merely hold the no-worse line everywhere."""
    total0 = total2 = 0.0
    for name in MAPPING_CASES:
        aig = subject_aigs[name]
        for family in (LogicFamily.TG_STATIC, LogicFamily.TG_PSEUDO, LogicFamily.CMOS):
            result = map_rounds(
                aig,
                libraries[family],
                matcher=matchers[family],
                objective="delay",
                rounds=2,
            )
            round0, final = result.rounds[0], result.final
            assert final.normalized_delay <= round0.normalized_delay + 1e-9
            assert final.area <= round0.area + 1e-9
            total0 += round0.area
            total2 += final.area
    # At least a few percent of aggregate area must be recovered.
    assert total2 <= total0 * 0.99
