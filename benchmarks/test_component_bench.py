"""Component micro-benchmarks for the synthesis substrate.

These complement the table/figure harness by timing the individual stages of
the flow (library construction, matcher construction, optimization, cut
enumeration, mapping) on a fixed mid-size circuit, so performance regressions
in any one stage are visible in isolation.
"""

import pytest

from repro import obs, profiling
from repro.bench.generators.adders import ripple_adder_circuit
from repro.bench.generators.multiplier import array_multiplier_circuit
from repro.core.families import LogicFamily, build_family_cells
from repro.core.library import build_library
from repro.logic.npn import canonicalize_bits, clear_canonicalizer_memo
from repro.synthesis.aig_array import aig_arrays
from repro.synthesis.cuts import cut_set_for, enumerate_cuts
from repro.synthesis.mapper import technology_map
from repro.synthesis.matcher import (
    ExhaustiveLibraryMatcher,
    LibraryMatcher,
    cut_function_table,
)
from repro.synthesis.optimize import balance, optimize, rewrite


@pytest.fixture(scope="module")
def multiplier_aig():
    return array_multiplier_circuit(8)


def test_bench_library_construction(benchmark):
    """Build and verify all 46 static transmission-gate cells."""
    cells = benchmark(build_family_cells, LogicFamily.TG_STATIC)
    assert len(cells) == 46


def test_bench_matcher_construction(benchmark):
    """Build the NPN-canonical match index of the static library."""
    library = build_library(LogicFamily.TG_STATIC)
    matcher = benchmark(LibraryMatcher, library)
    # One entry per matched canonical class -- tiny compared to the
    # pre-expanded tables (see test_bench_exhaustive_matcher_construction).
    assert 0 < len(matcher) <= len(library)


def test_bench_exhaustive_matcher_construction(benchmark):
    """Enumerate the permutation/phase match tables (reference matcher)."""
    library = build_library(LogicFamily.TG_STATIC)
    matcher = benchmark(ExhaustiveLibraryMatcher, library)
    assert len(matcher) > 1000


def test_bench_balance(benchmark, multiplier_aig):
    balanced = benchmark(balance, multiplier_aig)
    assert balanced.depth() <= multiplier_aig.depth()


def test_bench_rewrite(benchmark, multiplier_aig):
    rewritten = benchmark(rewrite, multiplier_aig)
    assert rewritten.num_ands > 0


def test_bench_optimize_adder(benchmark):
    aig = ripple_adder_circuit(32)
    optimized = benchmark(optimize, aig)
    assert optimized.num_ands <= aig.num_ands


def test_bench_cut_enumeration(benchmark, multiplier_aig):
    cuts = benchmark(enumerate_cuts, multiplier_aig)
    assert len(cuts) >= multiplier_aig.num_ands


def test_bench_matching_batch(benchmark, multiplier_aig, libraries, matchers):
    """Batched match resolution (cut_function_table + match_table) on the
    multiplier's ranked cuts.

    Every round drops the per-cut-set memos and the batch canonicalizer memo
    first, so the benchmark times the full canonicalize/searchsorted/compose
    pipeline rather than a memo hit.
    """
    matcher = matchers[LogicFamily.TG_STATIC]
    arrays = aig_arrays(multiplier_aig)
    cut_set = cut_set_for(multiplier_aig)

    def run():
        for field in ("_match_tables", "_function_tables", "_projected"):
            cut_set.__dict__.pop(field, None)
        clear_canonicalizer_memo()
        return matcher.match_table(cut_set, arrays.and_nodes, "delay")

    table = benchmark(run)
    assert table.matched.any()
    assert table.inverse.shape[0] == int(
        (cut_set.count[arrays.and_nodes] - 1).sum()
    )


def test_bench_matching_scalar(benchmark, multiplier_aig, libraries, matchers):
    """Scalar oracle (``match_positions`` per distinct cut function) on the
    same workload as ``test_bench_matching_batch``, memos cleared per round."""
    matcher = matchers[LogicFamily.TG_STATIC]
    arrays = aig_arrays(multiplier_aig)
    cut_set = cut_set_for(multiplier_aig)
    functions = cut_function_table(cut_set, arrays.and_nodes)
    sizes = [int(v) for v in functions.sizes]
    tables = [int(v) for v in functions.tables]

    def run():
        matcher.cache_clear()
        canonicalize_bits.cache_clear()
        hits = 0
        for size, bits in zip(sizes, tables):
            if matcher.match_positions(size, bits, prefer="delay") is not None:
                hits += 1
        return hits

    hits = benchmark(run)
    assert hits > 0


def test_bench_mapping_only(benchmark, multiplier_aig, libraries, matchers):
    """Technology mapping alone (cuts + matching + covering) on an 8x8 multiplier."""
    library = libraries[LogicFamily.TG_STATIC]
    matcher = matchers[LogicFamily.TG_STATIC]
    mapped = benchmark(technology_map, multiplier_aig, library, matcher)
    assert mapped.gate_count > 0


def test_bench_obs_disabled_overhead(benchmark):
    """The observability off-path across 1000 instrumented sections.

    Every pipeline stage / mapper round / flow pass runs through these call
    sites unconditionally, so the disabled path (one module-attribute read
    each) must stay effectively free -- this pins it in seconds per 1000
    stage+span+count triples.
    """
    obs.reset()  # both modes off: measure the path production runs on
    assert not obs.tracing_active() and not profiling.active()

    def hot_loop():
        for _ in range(1000):
            with profiling.stage("bench-stage"):
                with obs.span("bench-span", category="task"):
                    profiling.count("bench-counter")

    benchmark(hot_loop)
    assert obs.spans() == []  # disabled: nothing may have been recorded
    assert obs.counters() == {}
