"""Benchmark: regenerate Table 2 (library construction + characterization).

Each benchmark measures the cost of building and characterizing one logic
family from the transistor-level construction rules, and asserts that the
measured family averages land near the published Table-2 averages.
"""

import pytest

from repro.core.characterize import characterize_family
from repro.core.families import LogicFamily, build_family_cells
from repro.core.library import GateLibrary
from repro.core.paper_data import PAPER_TABLE2_AVERAGES
from repro.experiments.table2 import FAMILY_KEYS, run_table2


def _build_and_characterize(family: LogicFamily):
    cells = build_family_cells(family)
    library = GateLibrary(family=family, cells=cells)
    return characterize_family(library)


@pytest.mark.parametrize(
    "family",
    [LogicFamily.TG_STATIC, LogicFamily.TG_PSEUDO, LogicFamily.PASS_PSEUDO, LogicFamily.CMOS],
    ids=lambda f: f.value,
)
def test_table2_family_characterization(benchmark, family):
    """Table 2: build + characterize one family; compare averages with the paper."""
    rows, summary = benchmark(_build_and_characterize, family)
    paper = PAPER_TABLE2_AVERAGES[FAMILY_KEYS[family]]
    assert summary.average_area == pytest.approx(paper.area, rel=0.06)
    assert summary.average_fo4 == pytest.approx(paper.fo4_average, rel=0.20)
    assert len(rows) == (7 if family is LogicFamily.CMOS else 46)


def test_table2_full_experiment(benchmark):
    """Table 2: the complete four-family experiment as run by the harness."""
    result = benchmark(run_table2)
    static = result.summaries[LogicFamily.TG_STATIC]
    cmos = result.summaries[LogicFamily.CMOS]
    # The headline Table-2 observation: the CNTFET static library implements
    # far more complex functions at a slightly smaller average area and a
    # comparable average FO4 delay.
    assert static.average_area < cmos.average_area * 1.02
    assert static.average_fo4 < cmos.average_fo4 * 1.15
