"""Shared fixtures for the benchmark harness.

The pytest-benchmark suite regenerates every table and figure of the paper.
Libraries and matchers are built once per session; per-benchmark mapping runs
are what the individual benchmark functions measure.
"""

import pytest

from repro.core.families import LogicFamily
from repro.core.library import build_library
from repro.synthesis.matcher import matcher_for


@pytest.fixture(scope="session")
def libraries():
    """The three Table-3 libraries, fully characterized."""
    return {
        family: build_library(family)
        for family in (LogicFamily.TG_STATIC, LogicFamily.TG_PSEUDO, LogicFamily.CMOS)
    }


@pytest.fixture(scope="session")
def matchers(libraries):
    """Pre-built Boolean matchers (shared across all mapping benchmarks)."""
    return {family: matcher_for(library) for family, library in libraries.items()}
