"""Benchmark: regenerate Figure 6 (per-benchmark CMOS-to-CNTFET delay ratios).

Runs the mapping flow over a representative subset covering each circuit
class (arithmetic, error correction, ALU/control, random logic) and checks
the shape of the Figure-6 series: every ratio above one, the XOR-rich
circuits at the top, and the average in the range the paper reports.
"""

import pytest

from repro.experiments.figure6 import figure6_from_table3
from repro.experiments.table3 import run_table3

pytestmark = pytest.mark.slow

SUBSET = ("add-16", "add-32", "C1355", "C1908", "t481", "i18", "dalu")


def _figure6_subset():
    return figure6_from_table3(run_table3(benchmark_names=SUBSET))


def test_figure6_series(benchmark):
    """Figure 6: speed-up series over a class-representative benchmark subset."""
    figure = benchmark.pedantic(_figure6_subset, iterations=1, rounds=1)
    series = figure.series()

    # Every benchmark is faster on CNTFETs in absolute terms.
    assert all(entry["static"] > 1.0 for entry in series.values())
    assert all(entry["pseudo"] > 1.0 for entry in series.values())

    # XOR-rich circuits (adders, ECC) sit above the control-logic circuits,
    # the ordering Figure 6 displays.
    xor_rich = min(series[name]["static"] for name in ("add-16", "add-32", "C1355", "C1908"))
    control = min(series[name]["static"] for name in ("i18",))
    assert xor_rich > control

    # The subset average lands in the neighbourhood of the paper's 6.9x.
    assert 4.0 < figure.average_static_speedup < 12.0
