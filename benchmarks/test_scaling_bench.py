"""Scalability lane: mapping time on circuits larger than the Table-3 set.

The Table-3 benchmarks are sized for the paper reproduction; this lane maps
bigger instances of the same generator families -- a 16-bit array multiplier,
a 32-bit dedicated ALU and a two-round DES block -- at K=4 and K=6 so the
nightly ``scaling_bench.json`` artifact tracks how the vectorized cut
pipeline and the mapping DP behave as node count and cut pressure grow.
Each mapping is additionally spot-verified against the subject AIG on a
deterministic packed pattern set.
"""

import random

import pytest

from repro.bench.generators.alu import dedicated_alu_circuit
from repro.bench.generators.des import des_round_circuit
from repro.bench.generators.multiplier import array_multiplier_circuit
from repro.core.families import LogicFamily
from repro.synthesis.mapper import technology_map, verify_mapping

pytestmark = pytest.mark.slow

SCALING_CIRCUITS = {
    "mult-16": lambda: array_multiplier_circuit(width=16, name="mult-16"),
    "alu-32": lambda: dedicated_alu_circuit(data_width=32, seed=2026, name="alu-32"),
    "des-2r": lambda: des_round_circuit(
        block_width=64, rounds=2, seed=1977, name="des-2r"
    ),
}


@pytest.fixture(scope="module")
def scaling_aigs():
    return {name: build() for name, build in SCALING_CIRCUITS.items()}


def _cold_map(aig, library, matcher, objective, max_inputs):
    """Map with the per-AIG cut-set memo dropped, so every benchmark round
    pays for cut enumeration (the memo would otherwise make rounds 2..N
    measure only the DP and hide cut-pipeline regressions)."""
    aig.__dict__.pop("_cut_sets", None)
    return technology_map(
        aig, library, matcher=matcher, objective=objective, max_inputs=max_inputs
    )


@pytest.mark.parametrize("name", sorted(SCALING_CIRCUITS))
@pytest.mark.parametrize("max_inputs", [4, 6])
def test_bench_scaling_map(benchmark, libraries, matchers, scaling_aigs, name, max_inputs):
    """Technology-map one oversized circuit at the given K (timed cold)."""
    aig = scaling_aigs[name]
    family = LogicFamily.TG_STATIC
    mapped = benchmark(
        _cold_map,
        aig,
        libraries[family],
        matchers[family],
        "delay",
        max_inputs,
    )
    assert mapped.gate_count > 0
    assert mapped.levels > 0
    seed = random.Random(f"scaling:{name}:{max_inputs}")
    patterns = {
        pi: [seed.getrandbits(64) for _ in range(2)] for pi in aig.pi_names
    }
    assert verify_mapping(mapped, aig, patterns)
