"""Benchmark: the experiment engine's caching and scheduling wins.

Measures the full Table-3 regeneration through the engine: a cold run
(every job computed) against a warm run (every job served from the
content-addressed cache), asserting the cache delivers at least the 3x
wall-clock reduction the engine exists for.  A micro-benchmark compares the
word-parallel ``verify_mapping`` fast path against the retained
bit-at-a-time reference on a mid-size mapped circuit.
"""

import time

import pytest

from repro.core.families import LogicFamily
from repro.core.library import build_library
from repro.experiments.engine import ExperimentEngine
from repro.logic.simulation import random_pattern_words
from repro.synthesis.mapper import (
    technology_map,
    verify_mapping,
    verify_mapping_reference,
)
from repro.synthesis.matcher import matcher_for
from repro.synthesis.optimize import optimize
from repro.bench.registry import benchmark_by_name

pytestmark = pytest.mark.slow


def test_engine_warm_cache_at_least_3x_faster(benchmark, tmp_path_factory):
    """Full Table 3: cold compute vs. warm content-addressed cache."""
    cache_dir = tmp_path_factory.mktemp("engine-cache")
    engine = ExperimentEngine(jobs=1, cache_dir=cache_dir)

    start = time.perf_counter()
    cold = engine.run_table3()
    cold_seconds = time.perf_counter() - start

    warm = benchmark.pedantic(engine.run_table3, iterations=1, rounds=1)
    warm_seconds = benchmark.stats.stats.mean

    view = lambda result: [(row.name, row.results) for row in result.rows]
    assert view(cold) == view(warm)
    assert cold_seconds >= 3.0 * warm_seconds, (
        f"warm cache run ({warm_seconds:.3f}s) not >=3x faster than cold "
        f"({cold_seconds:.3f}s)"
    )


def test_verify_fast_path_vs_reference(benchmark):
    """Word-parallel mapped-netlist verification vs. the bit-level oracle."""
    aig = optimize(benchmark_by_name("C1908").build())
    library = build_library(LogicFamily.TG_STATIC)
    mapped = technology_map(aig, library, matcher=matcher_for(library))
    patterns = random_pattern_words(aig.pi_names, num_words=4, seed=19)

    start = time.perf_counter()
    assert verify_mapping_reference(mapped, aig, patterns)
    reference_seconds = time.perf_counter() - start

    assert benchmark(verify_mapping, mapped, aig, patterns)
    fast_seconds = benchmark.stats.stats.mean
    assert fast_seconds < reference_seconds
