"""Benchmark: regenerate Table 3 (synthesis + technology mapping per benchmark).

One pytest-benchmark entry per Table-3 circuit measures the full flow
(generate, optimize, map onto the three libraries) and asserts the relative
CNTFET-vs-CMOS trends the paper reports for that circuit.  A final aggregate
benchmark checks the paper's average improvement figures.
"""

import pytest

from repro.bench.registry import BENCHMARKS, benchmark_by_name
from repro.core.families import LogicFamily
from repro.experiments.table3 import map_benchmark, run_table3

pytestmark = pytest.mark.slow

#: Benchmarks small enough to run as individual timed entries; the aggregate
#: run below still covers all fifteen.
PER_CIRCUIT = [case.name for case in BENCHMARKS]


@pytest.mark.parametrize("name", PER_CIRCUIT)
def test_table3_benchmark_row(benchmark, name, libraries, matchers):
    """Table 3, one row: full synthesis and mapping flow for one benchmark."""
    case = benchmark_by_name(name)
    row = benchmark.pedantic(map_benchmark, args=(case,), iterations=1, rounds=1)
    static = row.results[LogicFamily.TG_STATIC]
    pseudo = row.results[LogicFamily.TG_PSEUDO]
    cmos = row.results[LogicFamily.CMOS]

    # Relative trends of Table 3, checked per circuit.
    assert static.gates < cmos.gates
    assert static.area < cmos.area
    assert pseudo.area < static.area
    assert static.absolute_delay_ps < cmos.absolute_delay_ps
    # XOR-rich circuits show the largest speed-ups (Sec. 4.4).
    speedup = row.speedup_vs_cmos(LogicFamily.TG_STATIC)
    if case.xor_rich:
        assert speedup > 5.0
    else:
        assert speedup > 2.0


def test_table3_average_improvements(benchmark):
    """Table 3, bottom rows: average improvements across all 15 benchmarks."""
    result = benchmark.pedantic(run_table3, iterations=1, rounds=1)
    static = LogicFamily.TG_STATIC
    pseudo = LogicFamily.TG_PSEUDO

    # Paper: ~38% fewer gates, 37.7% / 64.5% area savings, faster circuits,
    # 6.9x / 5.8x absolute speed-up.  Our substitutes preserve the direction
    # and rough magnitude of every one of these (see EXPERIMENTS.md).
    assert result.average_improvement(static, "gates") > 0.15
    assert result.average_improvement(static, "area") > 0.25
    assert result.average_improvement(pseudo, "area") > result.average_improvement(
        static, "area"
    )
    assert result.average_improvement(static, "normalized_delay") > 0.10
    assert 5.0 < result.average_speedup(static) < 10.0
    assert result.average_speedup(static) > result.average_speedup(pseudo)
