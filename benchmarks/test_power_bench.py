"""Benchmark: the power-analysis lane (activities, netlist power, Pareto).

Times the three layers of the analysis subsystem on mid-size benchmarks --
exact and Monte-Carlo activity propagation, full netlist power analysis of a
mapped circuit, power-objective mapping and a whole-benchmark Pareto sweep
-- and asserts the paper's energy story: the pseudo family trades nonzero
static power for the lowest switched capacitance, the CMOS reference burns
the most dynamic power, and the power-objective mapping never loses to the
delay mapping on total power.  Results are exported as pytest-benchmark
JSON (``power_bench.json``) by the nightly CI job and guarded against the
committed baseline (``benchmarks/baselines/power_bench_baseline.json``).
"""

import pytest

from repro.analysis.activity import (
    compute_activities,
    exact_activities,
    monte_carlo_activities,
)
from repro.analysis.power import analyze_power
from repro.bench.registry import benchmark_by_name
from repro.core.families import LogicFamily
from repro.experiments.engine import ExperimentEngine
from repro.experiments.pareto import run_pareto
from repro.flow import run_flow
from repro.synthesis.mapper import technology_map

pytestmark = [pytest.mark.slow, pytest.mark.power]


@pytest.fixture(scope="module")
def subject_aig():
    return run_flow("resyn2rs", benchmark_by_name("C1908").build()).aig


@pytest.fixture(scope="module")
def activities(subject_aig):
    return compute_activities(subject_aig)


def test_bench_exact_activities(benchmark):
    # t481: 16 inputs, the largest exact enumeration in the default suite.
    aig = benchmark_by_name("t481").build()
    report = benchmark(exact_activities, aig, 16)
    assert report.method == "exact"
    assert report.patterns == 1 << 16


def test_bench_monte_carlo_activities(benchmark, subject_aig):
    report = benchmark(monte_carlo_activities, subject_aig, 1024, 2009)
    assert report.method == "monte-carlo"
    assert report.patterns == 1024 * 64


def test_bench_netlist_power_all_families(benchmark, subject_aig, activities, matchers, libraries):
    def analyze_all():
        reports = {}
        for family, library in libraries.items():
            mapped = technology_map(
                subject_aig, library, matcher=matchers[family]
            )
            reports[family] = analyze_power(mapped, subject_aig, library, activities)
        return reports

    reports = benchmark(analyze_all)
    assert reports[LogicFamily.TG_PSEUDO].static > 0
    assert reports[LogicFamily.TG_STATIC].static == 0.0
    assert reports[LogicFamily.CMOS].static == 0.0
    assert (
        reports[LogicFamily.CMOS].dynamic > reports[LogicFamily.TG_STATIC].dynamic
    )


def test_bench_power_objective_mapping(benchmark, subject_aig, activities, matchers, libraries):
    library = libraries[LogicFamily.TG_PSEUDO]
    mapped = benchmark(
        technology_map,
        subject_aig,
        library,
        matchers[LogicFamily.TG_PSEUDO],
        "power",
        activities=activities,
    )
    power_mapped = analyze_power(mapped, subject_aig, library, activities)
    delay_mapped = analyze_power(
        technology_map(subject_aig, library, matcher=matchers[LogicFamily.TG_PSEUDO]),
        subject_aig,
        library,
        activities,
    )
    assert power_mapped.total <= delay_mapped.total


def test_bench_pareto_sweep(benchmark):
    result = benchmark(
        run_pareto,
        ("C1908",),
        (LogicFamily.TG_STATIC, LogicFamily.TG_PSEUDO, LogicFamily.CMOS),
        engine=ExperimentEngine(jobs=1, use_cache=False),
    )
    row = result.row("C1908")
    assert row.front
    assert any(p.family is LogicFamily.TG_PSEUDO for p in row.front)
