"""Map your own circuit: BLIF import and the full synthesis flow.

Shows the path a downstream user would follow for their own design:

1. describe a circuit either with the :class:`CircuitBuilder` API or as a
   BLIF file (here: a 4-bit multiply-accumulate written programmatically and
   round-tripped through BLIF);
2. optimize it with the technology-independent flow;
3. map it onto every CNTFET family plus the CMOS reference and compare;
4. verify that the mapped netlist is functionally equivalent to the input.

Run with:  python examples/custom_benchmark.py
"""

from repro.core import LogicFamily, build_library
from repro.logic.simulation import random_pattern_words
from repro.synthesis import CircuitBuilder, optimize, read_blif, technology_map, write_blif
from repro.synthesis.mapper import verify_mapping


def build_mac() -> str:
    """A 4-bit multiply-accumulate unit, serialized to BLIF."""
    builder = CircuitBuilder("mac4")
    a = builder.input_bus("a", 4)
    b = builder.input_bus("b", 4)
    acc = builder.input_bus("acc", 8)

    # 4x4 product by shift-and-add.
    partial = [[builder.and_(a[j], b[i]) for j in range(4)] for i in range(4)]
    product = partial[0] + [builder.zero] * 4
    for i in range(1, 4):
        addend = [builder.zero] * i + partial[i] + [builder.zero] * (4 - i)
        product, _ = builder.ripple_adder(product, addend)

    total, carry = builder.ripple_adder(product, acc)
    builder.output_bus("y", total)
    builder.output("ovf", carry)
    return write_blif(builder.finish())


def main() -> None:
    blif_text = build_mac()
    print(f"BLIF description: {len(blif_text.splitlines())} lines")

    aig = read_blif(blif_text)
    optimized = optimize(aig)
    print(f"Subject graph: {aig.num_ands} AND nodes -> {optimized.num_ands} after optimization, "
          f"depth {aig.depth()} -> {optimized.depth()}\n")

    patterns = random_pattern_words(optimized.pi_names, num_words=8, seed=42)
    print(f"{'family':<22} {'gates':>6} {'area':>8} {'levels':>7} {'delay ps':>9}  equivalent")
    for family in (
        LogicFamily.TG_STATIC,
        LogicFamily.TG_PSEUDO,
        LogicFamily.PASS_PSEUDO,
        LogicFamily.CMOS,
    ):
        library = build_library(family)
        mapped = technology_map(optimized, library)
        ok = verify_mapping(mapped, optimized, patterns)
        print(f"{library.name:<22} {mapped.gate_count:>6d} {mapped.area:>8.1f} "
              f"{mapped.levels:>7d} {mapped.absolute_delay_ps:>9.1f}  {ok}")


if __name__ == "__main__":
    main()
