"""Explore the gate library: Table 1, Table 2 characterization and genlib export.

Prints the 46 Table-1 functions, the characterization of a few representative
cells in every family (measured next to the published Table-2 values), and
writes genlib files for the static and pseudo libraries -- the artefact the
paper fed to ABC for technology mapping.

Run with:  python examples/library_explorer.py
"""

from pathlib import Path

from repro.core import (
    LogicFamily,
    TABLE1_FUNCTIONS,
    build_library,
    characterize_cell,
)
from repro.core.paper_data import PAPER_TABLE2
from repro.experiments.table2 import FAMILY_KEYS, run_table2
from repro.experiments.report import render_table2

SHOWCASE = ("F00", "F01", "F05", "F09", "F16", "F29", "F42")


def main() -> None:
    print("Table 1 -- the 46 ambipolar CNTFET logic functions")
    for spec in TABLE1_FUNCTIONS:
        marker = "   " if spec.uses_xor() else "(*)"
        print(f"  {spec.function_id} {marker} {spec.expression_text}")
    print("  (*) = also realizable by the 7-cell CMOS reference library\n")

    for family in (LogicFamily.TG_STATIC, LogicFamily.TG_PSEUDO, LogicFamily.PASS_PSEUDO):
        library = build_library(family)
        key = FAMILY_KEYS[family]
        print(f"Representative cells, {library.name}:")
        for function_id in SHOWCASE:
            row = characterize_cell(library.cell(function_id))
            paper = PAPER_TABLE2[function_id][key]
            print(
                f"  {function_id}: T={row.transistors:<2d} (paper {paper.transistors:<2d})  "
                f"A={row.area:<5.1f} (paper {paper.area:<5.1f})  "
                f"FO4 avg={row.fo4_average:<5.1f} (paper {paper.fo4_average:<5.1f})"
            )
        print()

    print(render_table2(run_table2()))

    out_dir = Path(__file__).resolve().parent / "generated"
    out_dir.mkdir(exist_ok=True)
    for family in (LogicFamily.TG_STATIC, LogicFamily.TG_PSEUDO, LogicFamily.CMOS):
        library = build_library(family)
        path = out_dir / f"{library.name}.genlib"
        path.write_text(library.to_genlib())
        print(f"\nwrote {path} ({len(library)} gates)")


if __name__ == "__main__":
    main()
