"""Trace a small parallel run and explore where the time went.

Demonstrates the observability layer (``repro.obs``; see "Observability"
in ``ARCHITECTURE.md``):

1. run a small Table-3 subset through the runner CLI with ``--trace`` /
   ``--metrics-out`` / ``--events-out`` on two worker processes;
2. load the Chrome trace-event file back and show the per-process tracks
   (the parent's scheduling/cache spans plus one track per worker) --
   the same file opens in Perfetto or ``about:tracing``;
3. read the metrics report and print the latency percentiles, the five
   spans with the largest self time and the slowest individual jobs.

Run with:  python examples/trace_explorer.py
"""

import json
import tempfile
from collections import Counter
from pathlib import Path

from repro.experiments.runner import main as runner_main

SUBSET = ("add-16", "add-32")


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-trace-"))
    trace_path = workdir / "trace.json"
    metrics_path = workdir / "metrics.json"
    events_path = workdir / "events.jsonl"

    print("=== traced run (two workers) ===")
    runner_main(
        [
            *SUBSET,
            "--jobs",
            "2",
            "--cache-dir",
            str(workdir / "cache"),
            "--trace",
            str(trace_path),
            "--metrics-out",
            str(metrics_path),
            "--events-out",
            str(events_path),
        ]
    )

    trace = json.loads(trace_path.read_text())
    events = trace["traceEvents"]
    tracks = {
        event["pid"]: event["args"]["name"]
        for event in events
        if event["ph"] == "M"
    }
    spans_per_track = Counter(
        tracks[event["pid"]] for event in events if event["ph"] == "X"
    )
    print("\n=== process tracks ===")
    for name in sorted(spans_per_track):
        print(f"  {name:<16} {spans_per_track[name]:>4} spans")
    print(f"(open {trace_path} in Perfetto / about:tracing to see them)")

    metrics = json.loads(metrics_path.read_text())
    jobs = metrics["histograms"]["job_latency_ms"]
    print("\n=== job latency (ms) ===")
    print(
        f"  executed {metrics['jobs']['executed']}, cached "
        f"{metrics['jobs']['cached']}, cache hit rate "
        f"{metrics['cache']['hit_rate']:.0%}"
    )
    if jobs["count"]:
        print(
            f"  p50 {jobs['p50']:.1f}  p90 {jobs['p90']:.1f}  "
            f"p99 {jobs['p99']:.1f}  max {jobs['max']:.1f}"
        )

    print("\n=== top 5 spans by self time ===")
    for row in metrics["top_spans_by_self_time"]:
        print(
            f"  {row['self_ms']:>8.1f} ms  {row['category']:<7} "
            f"{row['name']}  (pid {row['pid']})"
        )

    job_spans = sorted(
        (
            line
            for line in map(json.loads, events_path.read_text().splitlines())
            if line["type"] == "span" and line["category"] == "job"
        ),
        key=lambda line: -line["duration_us"],
    )
    print("\n=== slowest jobs ===")
    for line in job_spans[:5]:
        print(
            f"  {line['duration_us'] / 1000:>8.1f} ms  {line['name']}"
            f"  (worker {line['pid']})"
        )


if __name__ == "__main__":
    main()
