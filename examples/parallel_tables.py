"""Regenerate the paper's tables through the parallel experiment engine.

Demonstrates the scaling subsystem behind ``repro.experiments``:

1. build an :class:`~repro.experiments.engine.ExperimentEngine` with worker
   processes and a content-addressed on-disk cache;
2. regenerate Table 2 and a Table-3 subset through it (the second run is
   served from the cache and is nearly free);
3. write the machine-readable JSON artifacts next to the rendered text.

Run with:  python examples/parallel_tables.py
"""

import tempfile
import time
from pathlib import Path

from repro.experiments import ExperimentEngine, render_table3
from repro.experiments.figure6 import figure6_from_table3

SUBSET = ("add-16", "add-32", "C1355")


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-engine-"))
    engine = ExperimentEngine(jobs=4, cache_dir=workdir / "cache")

    start = time.perf_counter()
    table3 = engine.run_table3(benchmark_names=SUBSET)
    cold = time.perf_counter() - start
    print(render_table3(table3))

    start = time.perf_counter()
    engine.run_table3(benchmark_names=SUBSET)
    warm = time.perf_counter() - start
    print(f"\ncold run {cold:.2f} s -> warm cached run {warm:.3f} s "
          f"({cold / max(warm, 1e-9):.0f}x)")

    table2 = engine.run_table2()
    written = engine.write_artifacts(
        workdir / "artifacts",
        table2=table2,
        table3=table3,
        figure6=figure6_from_table3(table3),
    )
    print("artifacts:", ", ".join(str(path) for path in written))


if __name__ == "__main__":
    main()
