"""Reproduce the adder rows of Table 3 and their Figure-6 speed-ups.

The add-16 / add-32 / add-64 benchmarks are exact reconstructions of the
paper's circuits, so this is the closest apples-to-apples comparison the
reproduction offers: the script maps each adder onto the CNTFET static,
CNTFET pseudo and CMOS libraries and prints measured-vs-paper rows.

Run with:  python examples/adder_mapping.py
"""

from repro.core.families import LogicFamily
from repro.core.paper_data import paper_benchmark
from repro.experiments.table3 import run_table3

FAMILY_LABEL = {
    LogicFamily.TG_STATIC: "CNTFET static",
    LogicFamily.TG_PSEUDO: "CNTFET pseudo",
    LogicFamily.CMOS: "CMOS",
}


def main() -> None:
    result = run_table3(benchmark_names=("add-16", "add-32", "add-64"))
    for row in result.rows:
        paper = paper_benchmark(row.name)
        paper_by_family = {
            LogicFamily.TG_STATIC: paper.tg_static,
            LogicFamily.TG_PSEUDO: paper.tg_pseudo,
            LogicFamily.CMOS: paper.cmos,
        }
        print(f"\n{row.name}  ({row.aig_nodes} AND nodes after optimization)")
        print(f"  {'family':<15} {'gates':>12} {'area':>14} {'levels':>12} {'abs delay ps':>18}")
        for family, stats in row.results.items():
            p = paper_by_family[family]
            print(
                f"  {FAMILY_LABEL[family]:<15} "
                f"{stats.gates:>5d} ({p.gates:>4d}) "
                f"{stats.area:>7.0f} ({p.area:>5.0f}) "
                f"{stats.levels:>5d} ({p.levels:>3d}) "
                f"{stats.absolute_delay_ps:>8.1f} ({p.absolute_delay_ps:>7.1f})"
            )
        static_speedup = row.speedup_vs_cmos(LogicFamily.TG_STATIC)
        paper_speedup = paper.cmos.absolute_delay_ps / paper.tg_static.absolute_delay_ps
        print(f"  Figure-6 speed-up (static vs CMOS): {static_speedup:.2f}x "
              f"(paper: {paper_speedup:.2f}x)")


if __name__ == "__main__":
    main()
