"""Regular fabric demo (Sec. 5 of the paper).

Builds a small checkerboard fabric of generalized NOR / NAND blocks, programs
a handful of Table-1 functions onto it in the field (by tying polarity inputs
to constants or signals), verifies each configured block functionally, and
reports the utilization and area of the fabric.

Run with:  python examples/regular_fabric_demo.py
"""

from itertools import product

from repro.core import function_by_id
from repro.core.regular_fabric import (
    BlockKind,
    FabricConfigurationError,
    GeneralizedGate,
    RegularFabric,
)

#: OR-form and AND-form Table-1 functions that fit a single generalized block.
PLACEMENTS = ("F01", "F02", "F03", "F04", "F08", "F09", "F13", "F16", "F29", "F42", "F45")


def main() -> None:
    fabric = RegularFabric(rows=4, columns=4, term_count=3)
    print(f"Fabric: {fabric.rows} x {fabric.columns} blocks, "
          f"{fabric.term_count} transmission-gate pairs per block")
    print(f"Total fabric area (normalized): {fabric.total_area():.1f}\n")

    for function_id in PLACEMENTS:
        spec = function_by_id(function_id)
        try:
            block = fabric.place_function(spec)
        except FabricConfigurationError as error:
            print(f"  {function_id}: not placeable ({error})")
            continue
        # Verify the programmed block against the Table-1 function.
        names = spec.input_names
        correct = all(
            block.gate.evaluate(dict(zip(names, values)))
            == (not spec.expression.evaluate(dict(zip(names, values))))
            for values in product([False, True], repeat=len(names))
        )
        print(f"  {function_id}: placed on {block.gate.kind.value} block "
              f"({block.row},{block.column}), verified={correct}")

    print(f"\nFabric utilization: {fabric.utilization():.0%}")
    gnor_area = GeneralizedGate(BlockKind.GNOR, 3).area()
    print(f"Area per generalized block (with output inverter): {gnor_area:.1f} "
          f"-- identical for GNOR and GNAND (Fig. 8: same layout rotated 180 degrees)")


if __name__ == "__main__":
    main()
