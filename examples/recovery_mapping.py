"""Required-time recovery: area/power at unchanged worst delay.

Demonstrates the multi-round mapping engine on Table-3 circuits:

1. map delay-optimal (round 0) and with two area-recovery rounds, comparing
   area at the (guaranteed unchanged) worst delay;
2. inspect the per-round trajectory recorded in the
   :class:`~repro.synthesis.mapper.MappingResult`;
3. run mapping as a flow pass (``map`` from :mod:`repro.flow.mapping`)
   interleaved with resynthesis.

Run with:  python examples/recovery_mapping.py
"""

from repro.bench.registry import benchmark_by_name
from repro.core import LogicFamily, build_library
from repro.flow import FlowSpec, register_flow, run_flow
from repro.synthesis import map_rounds
from repro.synthesis.matcher import matcher_for

BENCHES = ("t481", "dalu", "C1908", "C6288")


def recovery_comparison() -> None:
    print(f"{'benchmark':<9} {'family':<18} {'area r0':>9} {'area r2':>9} "
          f"{'saved':>7} {'delay':>8}")
    for name in BENCHES:
        aig = run_flow("resyn2rs", benchmark_by_name(name).build()).aig
        for family in (LogicFamily.TG_STATIC, LogicFamily.TG_PSEUDO, LogicFamily.CMOS):
            library = build_library(family)
            result = map_rounds(
                aig, library, matcher=matcher_for(library),
                objective="delay", rounds=2,
            )
            round0, final = result.rounds[0], result.final
            saved = (1.0 - final.area / round0.area) * 100 if round0.area else 0.0
            assert final.normalized_delay <= round0.normalized_delay + 1e-9
            print(f"{name:<9} {library.name:<18} {round0.area:>9.1f} "
                  f"{final.area:>9.1f} {saved:>6.1f}% "
                  f"{final.normalized_delay:>8.2f}")


def round_trajectory() -> None:
    aig = run_flow("resyn2rs", benchmark_by_name("dalu").build()).aig
    library = build_library(LogicFamily.CMOS)
    result = map_rounds(
        aig, library, matcher=matcher_for(library), objective="delay", rounds=3
    )
    print("\ndalu / cmos-static round trajectory (objective=delay, recovery=area):")
    for index, (mapped, kept) in enumerate(zip(result.rounds, result.accepted)):
        tag = "kept" if kept else "rejected"
        print(f"  round {index}: area {mapped.area:8.1f}  "
              f"delay {mapped.normalized_delay:7.2f}  slack "
              f"{mapped.worst_slack:6.3f}  [{tag}]")


def mapping_as_a_pass() -> None:
    register_flow(FlowSpec(
        name="resyn-map",
        description="two rewrite rounds with a final mapping",
        prologue=("balance",),
        round_passes=("rewrite", "balance"),
        max_rounds=2,
    ), replace=True)
    aig = benchmark_by_name("t481").build()
    # The built-in `map` pass targets the static TG library; flows can place
    # it anywhere in the pipeline.
    register_flow(FlowSpec(name="resyn-map-final",
                           prologue=("balance", "rewrite", "balance", "map")),
                  replace=True)
    result = run_flow("resyn-map-final", aig)
    mapped = result.mapped
    print(f"\nflow-integrated mapping of t481: {mapped.gate_count} gates, "
          f"area {mapped.area:.1f}, stats {mapped.statistics()}")


if __name__ == "__main__":
    recovery_comparison()
    round_trajectory()
    mapping_as_a_pass()
