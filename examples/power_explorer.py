"""Explore the power/energy axis: static-vs-pseudo tradeoff and Pareto front.

The paper's pseudo families buy speed and area by burning static power
through their weak pull-up loads; this example makes the tradeoff concrete
for one benchmark.  It prints

1. the cell-level view -- the switched capacitance and standing current of a
   few representative cells in the static and pseudo TG families;
2. the netlist view -- dynamic + static power of the benchmark mapped onto
   every logic family under every mapping objective; and
3. the area/delay/power Pareto front across all families and objectives
   (the points a designer would actually choose from).

Run with:  python examples/power_explorer.py [benchmark]  (default: C1908)
"""

import sys

from repro.analysis.activity import compute_activities
from repro.analysis.power import analyze_power
from repro.bench.registry import benchmark_by_name
from repro.core.families import LogicFamily
from repro.core.library import build_library
from repro.experiments.engine import ExperimentEngine
from repro.experiments.pareto import render_pareto, run_pareto
from repro.flow import run_flow
from repro.synthesis.mapper import technology_map
from repro.synthesis.matcher import matcher_for

SHOWCASE = ("F00", "F05", "F12", "F29")


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "C1908"

    print("Cell-level power characterization (normalized units):")
    print(f"{'cell':<16} {'family':<18} {'C_switched':>10} {'I_static(low)':>14}")
    for family in (LogicFamily.TG_STATIC, LogicFamily.TG_PSEUDO):
        library = build_library(family)
        for function_id in SHOWCASE:
            cell = library.cell(function_id)
            report = cell.power
            print(
                f"{cell.function_id:<16} {family.value:<18} "
                f"{report.switched_capacitance:>10.3f} "
                f"{report.static_current_low:>14.4f}"
            )
    print()

    aig = run_flow("resyn2rs", benchmark_by_name(name).build()).aig
    activities = compute_activities(aig)
    print(
        f"{name}: {aig.num_ands} AND nodes, signal statistics via "
        f"{activities.method} ({activities.patterns} patterns)\n"
    )

    print("Mapped-netlist power per family and mapping objective:")
    header = (
        f"{'family':<22} {'objective':<9} {'area':>9} {'delay ps':>9} "
        f"{'dynamic':>9} {'static':>8} {'total':>9}"
    )
    print(header)
    for family in LogicFamily:
        library = build_library(family)
        matcher = matcher_for(library)
        for objective in ("delay", "area", "power"):
            mapped = technology_map(
                aig, library, matcher=matcher,
                objective=objective, activities=activities,
            )
            power = analyze_power(mapped, aig, library, activities)
            print(
                f"{family.value:<22} {objective:<9} {mapped.area:>9.1f} "
                f"{mapped.absolute_delay_ps:>9.1f} "
                f"{power.dynamic + power.input_dynamic:>9.2f} "
                f"{power.static:>8.2f} {power.total:>9.2f}"
            )
    print()

    result = run_pareto(
        benchmark_names=(name,), engine=ExperimentEngine(jobs=1, use_cache=False)
    )
    print(render_pareto(result))


if __name__ == "__main__":
    main()
