"""Quickstart: build the ambipolar CNTFET library and map a small circuit.

This walks through the three core steps of the reproduction:

1. build and characterize the static transmission-gate library (Table 2);
2. describe a small circuit (a 2-bit adder) and optimize it with a named
   synthesis flow (the paper's ``resyn2rs``, with per-pass telemetry);
3. map it onto the CNTFET library and onto the CMOS reference library and
   compare the Table-3 style statistics.

Run with:  python examples/quickstart.py
"""

from repro.core import LogicFamily, build_library
from repro.flow import run_flow
from repro.synthesis import CircuitBuilder, technology_map


def main() -> None:
    # 1. Build the libraries (46 ambipolar cells vs. 7 CMOS cells).
    cntfet = build_library(LogicFamily.TG_STATIC)
    cmos = build_library(LogicFamily.CMOS)
    print(f"CNTFET static library: {len(cntfet)} cells "
          f"(avg area {cntfet.average_area():.1f}, avg FO4 {cntfet.average_fo4():.1f})")
    print(f"CMOS reference library: {len(cmos)} cells "
          f"(avg area {cmos.average_area():.1f}, avg FO4 {cmos.average_fo4():.1f})")

    xnor = cntfet.cell("F01")
    print(f"\nExample cell {xnor.name}: function {xnor.expression_text}, "
          f"{xnor.transistor_count} transistors, area {xnor.area:.2f}, "
          f"FO4 {xnor.delay.fo4_average:.1f} (faster than the inverter!)")

    # 2. Describe a 2-bit adder with the circuit builder and run the paper's
    #    synthesis flow on it (try "quick" or "deep" -- see
    #    `python -m repro.experiments.runner --list-flows`).
    builder = CircuitBuilder("adder2")
    a = builder.input_bus("a", 2)
    b = builder.input_bus("b", 2)
    total, carry = builder.ripple_adder(a, b)
    builder.output_bus("sum", total)
    builder.output("cout", carry)
    flow_result = run_flow("resyn2rs", builder.finish())
    aig = flow_result.aig
    print(f"\nFlow {flow_result.flow!r} ({flow_result.seconds * 1000:.1f} ms):")
    for line in flow_result.telemetry_lines():
        print(f"  {line}")
    print(f"Subject circuit: {aig.num_ands} AND nodes, depth {aig.depth()}")

    # 3. Map onto both libraries and compare.
    for library in (cntfet, cmos):
        mapped = technology_map(aig, library)
        stats = mapped.statistics()
        print(f"  {library.name:<18} gates={stats['gates']:<3.0f} "
              f"area={stats['area']:<6.1f} levels={stats['levels']:<2.0f} "
              f"abs delay={stats['absolute_delay_ps']:.1f} ps")
        print(f"    cells used: {mapped.gate_histogram()}")


if __name__ == "__main__":
    main()
